"""Batch-vectorized netsim core (struct-of-arrays engine).

The object simulator in :mod:`repro.netsim.router` /
:mod:`repro.netsim.network` is cycle-accurate but interpreter-bound:
every router pipeline stage is a Python loop over per-object state.
This module re-implements the *same* cycle-by-cycle semantics over
numpy struct-of-arrays so one ``step`` advances every router with a
handful of array ops:

* **State layout** — input-VC ring buffers (``qbuf``/``qhead``/
  ``qlen``), VC allocation state (``state``/``rc_out``/``rc_ovc``),
  per-port occupancy, credit counters and output-VC ownership bitmasks
  are flat arrays indexed by ``row = (router*P + port)*V + vc`` and
  ``g = router*P + port``.
* **Transport** — links and credit channels collapse into a few
  per-``(kind, delay)`` delay classes, each a deque of per-cycle
  batches; at most one batch is appended per class per cycle so
  arrivals are strictly increasing and delivery is a single pop.
* **VC allocation** — pending head flits are bucketed by their RC
  completion cycle; free output VCs are picked round-robin with a
  rotate-and-isolate bitmask trick (sequential fallback when two
  packets contend for the same output port in one cycle).
* **Switch allocation** — one winner per output port, one grant per
  input port, round-robin by circular distance from the port's
  pointer. Winners for every port are picked at once; the rare
  same-input-port conflicts are resolved by committing the conflict-
  free prefix (in the object engine's ascending-port order) and
  re-arbitrating the rest.

The engine is held to *bit parity* with the object simulator: the
golden corpus (``tests/netsim/goldens``) and the differential fuzz
harness (``tests/netsim/test_differential.py``) require identical
latency samples, flit counts and error behaviour. Deterministic
tie-breaking contract: VA scans VCs round-robin from the per-port
pointer; SA picks the minimum circular distance ``(port*V + vc -
pointer) mod (P*V)`` (distances are injective, so there are no ties);
ports arbitrate in ascending index order.

Set ``REPRO_SCALAR_NETSIM=1`` to force the object-model oracle
(mirrors ``REPRO_SCALAR_MAPPING=1`` for the mapping kernels).
"""

from __future__ import annotations

import itertools
import os
from collections import deque
from typing import Optional

import numpy as np

from repro import engines
from repro.netsim import _fast_step
from repro.netsim import packet as packet_module
from repro.netsim.packet import Flit, Packet
from repro.netsim.router import ACTIVE, IDLE, ROUTE
from repro.netsim.stats import RunStats
from repro.netsim.telemetry import LatencyHistogram

#: Set to ``"1"`` to force the scalar (object-model) simulator.
SCALAR_ENV = "REPRO_SCALAR_NETSIM"


def use_scalar_engine() -> bool:
    """Whether the scalar oracle is forced via the environment."""
    return os.environ.get(SCALAR_ENV, "") == "1"


def netsim_engine_tag(engine: str = "auto") -> str:
    """Provenance tag for experiment outputs."""
    return (
        "scalar"
        if engines.resolve_netsim_engine(engine) == "scalar"
        else "vectorized"
    )


# Flit codes pack (packet id, flit index) into one int64.
_SHIFT = 20
_IDX_MASK = (1 << _SHIFT) - 1

# log2 lookup for isolated bits (the VA free-VC scan); caps V at 16.
_MAX_VCS = 16
_LOG2 = np.zeros(1 << _MAX_VCS, dtype=np.int64)
for _i in range(_MAX_VCS):
    _LOG2[1 << _i] = _i

_I64_ONE = np.int64(1)


class _Incompatible(Exception):
    """Network shape the vectorized engine does not support."""


class _LazyPackets:
    """List-alike of delivered :class:`Packet` objects, built on touch.

    ``Terminal.packets_received`` can hold tens of thousands of
    packets after a run; most callers never look at them (the engine
    computes latency stats from its arrays). This defers the object
    construction until something iterates, indexes or appends —
    at which point it behaves exactly like the list the scalar engine
    would have produced.
    """

    __slots__ = ("_mk", "_pids", "_items")

    def __init__(self, mk, pids):
        self._mk = mk
        self._pids = pids
        self._items = None

    def _real(self):
        items = self._items
        if items is None:
            mk = self._mk
            items = self._items = [mk(pid) for pid in self._pids.tolist()]
        return items

    def __len__(self):
        items = self._items
        return len(self._pids) if items is None else len(items)

    def __bool__(self):
        return len(self) > 0

    def __iter__(self):
        return iter(self._real())

    def __getitem__(self, i):
        return self._real()[i]

    def append(self, packet):
        self._real().append(packet)

    def __eq__(self, other):
        return self._real() == other

    def __repr__(self):
        return repr(self._real())


def engine_for(network, telemetry=None, engine: str = "auto") -> Optional["FastEngine"]:
    """Compile a vectorized engine for ``network``, or ``None``.

    ``engine`` is a :data:`repro.engines.NETSIM_ENGINES` name, resolved
    once here (callers that resolved already may pass the concrete
    value through — resolution is idempotent). ``None`` falls back to
    the scalar object simulator: a ``"scalar"`` resolution (requested
    or env-forced), an un-tagged route function (no ``route_spec``), a
    network that is not pristine, or a shape outside the engine's
    support (non-uniform radix/VC/buffer config, >16 VCs) all decline
    rather than risk divergence.
    """
    resolved = engines.resolve_netsim_engine(engine)
    if resolved == "scalar":
        return None
    if getattr(network, "route_spec", None) is None:
        return None
    try:
        return FastEngine(network, telemetry, use_c=resolved == "c")
    except _Incompatible:
        return None


class FastEngine:
    """One compiled run-engine for a pristine :class:`NetworkModel`."""

    def __init__(self, network, telemetry=None, use_c: bool = True):
        if network.telemetry is not None:
            raise _Incompatible("a telemetry sink is already attached")
        if network.cycle != 0 or network.in_flight_flits() != 0:
            raise _Incompatible("network is not pristine")
        routers = network.routers
        terminals = network.terminals
        if not routers or not terminals:
            raise _Incompatible("empty network")
        P = routers[0].n_ports
        V = routers[0].num_vcs
        CAP = routers[0].buffer_cap
        for r in routers:
            if r.n_ports != P or r.num_vcs != V or r.buffer_cap != CAP:
                raise _Incompatible("non-uniform router shapes")
            if r.rc_pending or r.active_out_ports:
                raise _Incompatible("router has in-flight state")
        if V > _MAX_VCS:
            raise _Incompatible("too many VCs for the bitmask allocator")
        # Telemetry is instrumented only in the compiled kernel (the
        # numpy step loop carries no counters); without it the run
        # falls back to the scalar object engine, which *is* the
        # instrumented implementation. The gate must mirror
        # :meth:`_c_build`'s own bail-outs exactly.
        if telemetry is not None and (
            not use_c or _fast_step.load_kernel() is None or P > 64
        ):
            raise _Incompatible("telemetry requires the compiled kernel")
        self.telemetry = telemetry
        self.use_c = use_c

        self.network = network
        self.R = R = len(routers)
        self.P = P
        self.V = V
        self.CAP = CAP
        self.T = T = len(terminals)
        self.PV = PV = P * V
        RP = R * P
        RPV = R * PV
        self._full_mask = np.int64((1 << V) - 1)

        # --- per-input-VC (row) state ------------------------------
        self.qbuf = np.zeros(RPV * CAP, dtype=np.int64)
        self.qhead = np.zeros(RPV, dtype=np.int64)
        self.qlen = np.zeros(RPV, dtype=np.int64)
        self.state = np.zeros(RPV, dtype=np.int8)
        self.rc_out = np.full(RPV, -1, dtype=np.int64)
        self.rc_ovc = np.full(RPV, -1, dtype=np.int64)
        self.gout = np.full(RPV, -1, dtype=np.int64)

        # --- per-port (g = router*P + port) state ------------------
        self.occ = np.zeros(RP, dtype=np.int64)
        self.ocred = np.zeros(RP, dtype=np.int64)
        self.oterm = np.zeros(RP, dtype=bool)
        self.ovc_mask = np.zeros(RP, dtype=np.int64)
        self.vc_ptr = np.zeros(RP, dtype=np.int64)
        self.sa_ptr = np.zeros(RP, dtype=np.int64)
        self.fwd_g = np.zeros(RP, dtype=np.int64)
        self.rc_delay = np.zeros(RP, dtype=np.int64)
        # SA-respawned heads are seen by VA one cycle later at minimum.
        self.rc_delay_respawn = np.zeros(RP, dtype=np.int64)
        self.send_cls = np.full(RP, -1, dtype=np.int64)
        self.send_dest = np.full(RP, -1, dtype=np.int64)
        self.cred_cls = np.full(RP, -1, dtype=np.int64)
        self.cred_dest = np.full(RP, -1, dtype=np.int64)

        # --- terminals ---------------------------------------------
        self.tcred = np.zeros(T, dtype=np.int64)
        self.tvc = np.zeros(T, dtype=np.int64)
        self.tsent = np.zeros(T, dtype=np.int64)
        self.tpsent = np.zeros(T, dtype=np.int64)
        self.trecv = np.zeros(T, dtype=np.int64)
        self.tbacklog = np.zeros(T, dtype=np.int64)
        self.cur_pid = np.full(T, -1, dtype=np.int64)
        self.cur_idx = np.zeros(T, dtype=np.int64)
        self.inj_cls = np.full(T, -1, dtype=np.int64)
        self.inj_dest = np.full(T, -1, dtype=np.int64)
        self._pending = [deque() for _ in range(T)]

        # --- transport delay classes -------------------------------
        # kind: 'rf' flit->router, 'tf' flit->terminal, 'inj' inject
        # flit->router, 'rc' credit->router, 'tc' credit->terminal.
        self._cls_kind = []
        self._cls_delay = []
        self._cls_q = []
        self._cls_index = {}

        self._compile(network)

        # --- run bookkeeping ---------------------------------------
        self.cycle = 0
        self.inflight = 0
        self.delivered_total = 0
        self._n_active = 0
        self._total_backlog = 0
        self._rc_buckets = {}
        self._va_stalled = None
        self._deliv_log = []
        # packet store (grown by pregen / replay scheduling)
        self.pk_base = 0
        self.pk_dst = np.zeros(0, dtype=np.int64)
        self.pk_size = np.zeros(0, dtype=np.int64)
        self.pk_create = np.zeros(0, dtype=np.int64)
        self.pk_inject = np.zeros(0, dtype=np.int64)
        self.pk_arrive = np.zeros(0, dtype=np.int64)
        self.pk_src = np.zeros(0, dtype=np.int64)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    def _class(self, kind: str, delay: int) -> int:
        key = (kind, delay)
        ci = self._cls_index.get(key)
        if ci is None:
            ci = len(self._cls_kind)
            self._cls_index[key] = ci
            self._cls_kind.append(kind)
            self._cls_delay.append(delay)
            self._cls_q.append(deque())
        return ci

    def _compile(self, network) -> None:
        routers = network.routers
        terminals = network.terminals
        P, V = self.P, self.V
        router_index = {id(r): i for i, r in enumerate(routers)}
        term_index = {id(t): i for i, t in enumerate(terminals)}
        self._link_index = {
            id(link): i for i, (link, _, _, _) in enumerate(network.links)
        }
        link_map = {
            id(link): (kind, sink, port)
            for link, kind, sink, port in network.links
        }
        credit_router = {}
        self._credit_sink_index = {}
        for ci_, (channel, router, port) in enumerate(network._credit_sinks):
            g = router_index[id(router)] * P + port
            credit_router[id(channel)] = g
            self._credit_sink_index[id(channel)] = ci_
        term_credit = {
            id(t.credit_channel): i
            for i, t in enumerate(terminals)
            if t.credit_channel is not None
        }

        for ri, router in enumerate(routers):
            for p in range(P):
                g = ri * P + p
                self.ocred[g] = router.out_credits[p]
                self.oterm[g] = router.out_is_terminal[p]
                self.vc_ptr[g] = router._vc_arbiters[p]._pointer
                self.sa_ptr[g] = router._sa_arbiters[p]._pointer
                d = (
                    router.ingress_routing_delay
                    if p in router.terminal_in_ports
                    else router.routing_delay
                )
                self.rc_delay[g] = d
                self.rc_delay_respawn[g] = max(d, 1)
                link = router.out_link[p]
                if link is not None:
                    entry = link_map.get(id(link))
                    if entry is None:
                        raise _Incompatible("unregistered link")
                    kind, sink, port = entry
                    delay = link.latency + router.pipeline_delay
                    if kind == "router":
                        self.send_cls[g] = self._class("rf", delay)
                        self.send_dest[g] = router_index[id(sink)] * P + port
                    else:
                        self.send_cls[g] = self._class("tf", delay)
                        self.send_dest[g] = term_index[id(sink)]
                channel = router.in_credit_channel[p]
                if channel is not None:
                    dest = credit_router.get(id(channel))
                    if dest is not None:
                        self.cred_cls[g] = self._class("rc", channel.latency)
                        self.cred_dest[g] = dest
                    else:
                        t = term_credit.get(id(channel))
                        if t is None:
                            raise _Incompatible("unregistered credit channel")
                        self.cred_cls[g] = self._class("tc", channel.latency)
                        self.cred_dest[g] = t

        for ti, terminal in enumerate(terminals):
            link = terminal.inject_link
            if link is None:
                raise _Incompatible("unattached terminal")
            kind, sink, port = link_map[id(link)]
            if kind != "router":
                raise _Incompatible("inject link must feed a router")
            self.inj_cls[ti] = self._class("inj", link.latency)
            self.inj_dest[ti] = router_index[id(sink)] * P + port
            self.tcred[ti] = terminal.credits
            self.tvc[ti] = terminal._next_vc

        self._flit_classes = [
            i
            for i, k in enumerate(self._cls_kind)
            if k in ("rf", "tf", "inj")
        ]
        self._credit_classes = [
            i for i, k in enumerate(self._cls_kind) if k in ("rc", "tc")
        ]

        self._route = self._compile_route(network.route_spec)

    def _compile_route(self, spec):
        kind, params = spec
        P, V = self.P, self.V
        if kind == "mesh":
            tpr = params["terminals_per_router"]
            nc = params["neighbor_channels"]
            cols = params["cols"]

            def route(r, dst, pid):
                dst_router = dst // tpr
                my_r, my_c = r // cols, r % cols
                dst_r, dst_c = dst_router // cols, dst_router % cols
                # Directions: 0=N, 1=E, 2=S, 3=W; X first.
                direction = np.where(
                    my_c != dst_c,
                    np.where(dst_c > my_c, 1, 3),
                    np.where(dst_r > my_r, 2, 0),
                )
                remote = tpr + direction * nc + pid % nc
                return np.where(dst_router == r, dst % tpr, remote)

            return route
        if kind == "clos":
            n = params["n_terminals"]
            k = params["ssc_radix"]
            adaptive = params["spine_selection"] == "adaptive"
            down = k // 2
            leaves = 2 * n // k
            spines = n // k
            cpp = down // spines
            uplink0 = down
            n_up = spines * cpp
            ocred = self.ocred

            def route(r, dst, pid):
                dst_leaf = dst // down
                spine_out = dst_leaf * cpp + pid % cpp
                is_leaf = r < leaves
                if adaptive:
                    base_g = r * P + uplink0
                    cred = ocred[base_g[:, None] + np.arange(n_up)[None, :]]
                    up_out = uplink0 + np.argmax(cred, axis=1)
                else:
                    up_out = down + (pid % spines) * cpp + (pid // spines) % cpp
                leaf_out = np.where(r == dst_leaf, dst % down, up_out)
                return np.where(is_leaf, leaf_out, spine_out)

            return route
        if kind == "single":

            def route(r, dst, pid):
                return dst.copy()

            return route
        raise _Incompatible(f"unknown route spec {kind!r}")

    # ------------------------------------------------------------------
    # Per-cycle phases (must mirror NetworkModel.step exactly)
    # ------------------------------------------------------------------

    def _step(self) -> None:
        now = self.cycle
        # 1. Flit deliveries (links whose latency elapsed).
        for ci in self._flit_classes:
            q = self._cls_q[ci]
            while q and q[0][0] == now:
                _, dest, code, vc, src = q.popleft()
                if self._cls_kind[ci] == "tf":
                    self._recv_terminal(dest, code, now)
                else:
                    self._recv_router(dest, code, vc, now)
        # 2. Credit returns, then terminal injection.
        for ci in self._credit_classes:
            q = self._cls_q[ci]
            while q and q[0][0] == now:
                _, dest, _, _, _ = q.popleft()
                if self._cls_kind[ci] == "rc":
                    self.ocred[dest] += 1
                else:
                    self.tcred[dest] += 1
        if self._total_backlog:
            self._inject(now)
        # 3. Router pipelines: VA for every router, then SA.
        self._va(now)
        if self._n_active:
            self._sa(now)
        self.cycle = now + 1

    # --- phase 1 helpers ---------------------------------------------

    def _recv_router(self, dest, code, vc, now) -> None:
        occ = self.occ
        occ[dest] += 1
        over = occ[dest] > self.CAP
        if over.any():
            g = int(dest[over][0])
            raise AssertionError(
                f"router {g // self.P} port {g % self.P}: buffer overflow "
                "(credit protocol violated)"
            )
        rows = dest * self.V + vc
        qhead, qlen = self.qhead, self.qlen
        slot = qhead[rows] + qlen[rows]
        slot[slot >= self.CAP] -= self.CAP
        self.qbuf[rows * self.CAP + slot] = code
        empty = qlen[rows] == 0
        qlen[rows] += 1
        if empty.any():
            erows = rows[empty]
            idle = self.state[erows] == IDLE
            if idle.any():
                irows = erows[idle]
                icodes = code[empty][idle]
                if ((icodes & _IDX_MASK) != 0).any():
                    raise AssertionError("body flit reached an idle VC front")
                self.state[irows] = ROUTE
                self._sched_rc(irows, self.rc_delay[irows // self.V], now)

    def _recv_terminal(self, dest, code, now) -> None:
        self.trecv[dest] += 1
        self.inflight -= dest.size
        self.delivered_total += dest.size
        pid = code >> _SHIFT
        tail = (code & _IDX_MASK) == self.pk_size[pid - self.pk_base] - 1
        if tail.any():
            tp = pid[tail]
            self.pk_arrive[tp - self.pk_base] = now
            self._deliv_log.append((dest[tail], tp))

    def _sched_rc(self, rows, delays, now) -> None:
        buckets = self._rc_buckets
        d0 = int(delays[0])
        if rows.size == 1 or (delays == d0).all():
            buckets.setdefault(now + d0, []).append(rows)
            return
        for d in np.unique(delays):
            sel = rows[delays == d]
            buckets.setdefault(now + int(d), []).append(sel)

    # --- phase 2: injection ------------------------------------------

    def _inject(self, now) -> None:
        cand = np.flatnonzero(self.tbacklog > 0)
        ok = self.tcred[cand] > 0
        rows = cand[ok]
        if rows.size == 0:
            return
        pid = self.cur_pid[rows]
        idx = self.cur_idx[rows]
        head = idx == 0
        if head.any():
            hrows = rows[head]
            nxt = self.tvc[hrows] + 1
            nxt[nxt >= self.V] = 0
            self.tvc[hrows] = nxt
            self.pk_inject[pid[head] - self.pk_base] = now
        vc = self.tvc[rows]
        self.tcred[rows] -= 1
        self.tsent[rows] += 1
        self.tbacklog[rows] -= 1
        self._total_backlog -= rows.size
        sizes = self.pk_size[pid - self.pk_base]
        tail = idx == sizes - 1
        if tail.any():
            self.tpsent[rows[tail]] += 1
        code = (pid << _SHIFT) | idx
        cls = self.inj_cls[rows]
        c0 = int(cls[0])
        if (cls == c0).all():
            self._push(c0, now, self.inj_dest[rows], code, vc, -1 - rows)
        else:
            for c in np.unique(cls):
                sel = cls == c
                srows = rows[sel]
                self._push(
                    int(c),
                    now,
                    self.inj_dest[srows],
                    code[sel],
                    vc[sel],
                    -1 - srows,
                )
        self.cur_idx[rows] = idx + 1
        if tail.any():
            cur_pid, cur_idx = self.cur_pid, self.cur_idx
            for t in rows[tail].tolist():
                pend = self._pending[t]
                if pend:
                    cur_pid[t] = pend.popleft()
                    cur_idx[t] = 0
                else:
                    cur_pid[t] = -1

    def _push(self, ci, now, dest, code, vc, src) -> None:
        self._cls_q[ci].append(
            (now + self._cls_delay[ci], dest, code, vc, src)
        )

    def _offer(self, t: int, gid: int, size: int) -> None:
        if self.tbacklog[t] == 0:
            self.cur_pid[t] = gid
            self.cur_idx[t] = 0
        else:
            self._pending[t].append(gid)
        self.tbacklog[t] += size
        self._total_backlog += size
        self.inflight += size

    # --- phase 3: VC allocation --------------------------------------

    def _va(self, now) -> None:
        fresh = self._rc_buckets.pop(now, None)
        stalled = self._va_stalled
        if fresh is None and stalled is None:
            return
        parts = [] if stalled is None else [stalled]
        if fresh is not None:
            parts.extend(fresh)
        rows = parts[0] if len(parts) == 1 else np.concatenate(parts)
        self._va_stalled = None
        if rows.size > 1:
            rows = np.sort(rows)
        rc_out = self.rc_out
        need = rc_out[rows] < 0
        if need.any():
            nrows = rows[need]
            codes = self.qbuf[nrows * self.CAP + self.qhead[nrows]]
            pid = codes >> _SHIFT
            dst = self.pk_dst[pid - self.pk_base]
            out = self._route(nrows // self.PV, dst, pid)
            bad = (out < 0) | (out >= self.P)
            if bad.any():
                raise AssertionError(
                    f"route function returned invalid port {int(out[bad][0])}"
                )
            rc_out[nrows] = out
        g = (rows // self.PV) * self.P + rc_out[rows]
        term = self.oterm[g]
        ovc = np.zeros(rows.size, dtype=np.int64)
        grant = np.ones(rows.size, dtype=bool)
        ntm = ~term
        if ntm.any():
            ng = g[ntm]
            sel, granted_nt = self._va_alloc(ng)
            ovc[ntm] = sel
            grant[ntm] = granted_nt
        grows = rows[grant]
        if grows.size:
            self.rc_ovc[grows] = ovc[grant]
            self.state[grows] = ACTIVE
            self.gout[grows] = g[grant]
            self._n_active += grows.size
        if not grant.all():
            self._va_stalled = rows[~grant]

    def _va_alloc(self, ng):
        """Round-robin free-VC pick per output port (batch)."""
        V = self.V
        unique = True
        if ng.size > 1:
            sg = np.sort(ng)
            unique = not (sg[1:] == sg[:-1]).any()
        if unique:
            free = (~self.ovc_mask[ng]) & self._full_mask
            has = free != 0
            ptr = self.vc_ptr[ng]
            rot = ((free >> ptr) | (free << (V - ptr))) & self._full_mask
            off = _LOG2[rot & (-rot)]
            sel = ptr + off
            sel[sel >= V] -= V
            hg = ng[has]
            hv = sel[has]
            nxt = hv + 1
            nxt[nxt >= V] = 0
            self.vc_ptr[hg] = nxt
            self.ovc_mask[hg] |= _I64_ONE << hv
            return sel, has
        # Two packets target the same output port this cycle: allocate
        # sequentially in ascending (port, vc) order, as the object
        # engine's sorted(rc_pending) loop does.
        sel = np.zeros(ng.size, dtype=np.int64)
        has = np.zeros(ng.size, dtype=bool)
        ovc_mask = self.ovc_mask
        vc_ptr = self.vc_ptr
        full = int(self._full_mask)
        for i in range(ng.size):
            gg = int(ng[i])
            free = (~int(ovc_mask[gg])) & full
            if free == 0:
                continue
            p0 = int(vc_ptr[gg])
            for off in range(V):
                c = p0 + off
                if c >= V:
                    c -= V
                if (free >> c) & 1:
                    break
            vc_ptr[gg] = c + 1 if c + 1 < V else 0
            ovc_mask[gg] |= 1 << c
            sel[i] = c
            has[i] = True
        return sel, has

    # --- phase 3: switch allocation ----------------------------------

    def _sa(self, now) -> None:
        req = np.flatnonzero((self.state == ACTIVE) & (self.qlen > 0))
        if req.size == 0:
            return
        g = self.gout[req]
        elig = self.oterm[g] | (self.ocred[g] > 0)
        if not elig.all():
            rows = req[elig]
            g = g[elig]
            if rows.size == 0:
                return
        else:
            rows = req
        PV = self.PV
        ug, ginv = np.unique(g, return_inverse=True)
        pv = rows % PV
        dist = (pv - self.sa_ptr[g]) % PV
        wrp = rows // self.V
        nG = ug.size
        resolved = np.zeros(nG, dtype=bool)
        locked = np.zeros(self.R * self.P, dtype=bool)
        commits = []
        while True:
            avail = ~(resolved[ginv] | locked[wrp])
            aidx = np.flatnonzero(avail)
            if aidx.size == 0:
                break
            key = ginv[aidx] * (PV + 1) + dist[aidx]
            order = aidx[np.argsort(key)]
            gs = ginv[order]
            first = np.empty(order.size, dtype=bool)
            first[0] = True
            first[1:] = gs[1:] != gs[:-1]
            widx = order[first]  # one winner per group, ascending group
            wg = ginv[widx]
            has = np.zeros(nG, dtype=bool)
            has[wg] = True
            resolved |= ~has  # groups with every row locked: skipped
            wr = wrp[widx]
            dup = False
            if wr.size > 1:
                swr = np.sort(wr)
                dup = bool((swr[1:] == swr[:-1]).any())
            if not dup:
                commits.append(widx)
                resolved[wg] = True
                locked[wr] = True
                continue
            # Same input port won two output ports: commit the
            # conflict-free prefix per router (the object engine's
            # ascending-port order) and re-arbitrate the rest.
            routers_of = ug[wg] // self.P
            keep = np.zeros(widx.size, dtype=bool)
            cur = -1
            seen = set()
            blocked = False
            for i in range(widx.size):
                rid = int(routers_of[i])
                if rid != cur:
                    cur = rid
                    seen = set()
                    blocked = False
                if blocked:
                    continue
                w = int(wr[i])
                if w in seen:
                    blocked = True
                    continue
                seen.add(w)
                keep[i] = True
            cw = widx[keep]
            commits.append(cw)
            resolved[wg[keep]] = True
            locked[wrp[cw]] = True
        if commits:
            pos = commits[0] if len(commits) == 1 else np.concatenate(commits)
            self._commit(rows[pos], g[pos], pv[pos], now)

    def _commit(self, crows, cg, cpv, now) -> None:
        nxt = cpv + 1
        nxt[nxt >= self.PV] = 0
        self.sa_ptr[cg] = nxt
        h = self.qhead[crows]
        code = self.qbuf[crows * self.CAP + h]
        h += 1
        h[h >= self.CAP] = 0
        self.qhead[crows] = h
        self.qlen[crows] -= 1
        cw = crows // self.V
        self.occ[cw] -= 1
        self.fwd_g[cw] += 1
        # Credit return upstream (one credit per forwarded flit).
        ccls = self.cred_cls[cw]
        c0 = int(ccls[0])
        if (ccls == c0).all():
            if c0 >= 0:
                self._push(c0, now, self.cred_dest[cw], None, None, None)
        else:
            for c in np.unique(ccls):
                if c < 0:
                    continue
                self._push(
                    int(c), now, self.cred_dest[cw[ccls == c]], None, None, None
                )
        out_vc = self.rc_ovc[crows]
        ct = self.oterm[cg]
        if not ct.all():
            self.ocred[cg[~ct]] -= 1
        scls = self.send_cls[cg]
        if (scls < 0).any():
            bad = int(cg[scls < 0][0])
            raise AssertionError(f"output port {bad % self.P} is not wired")
        s0 = int(scls[0])
        if (scls == s0).all():
            self._push(s0, now, self.send_dest[cg], code, out_vc, cg)
        else:
            for c in np.unique(scls):
                sel = scls == c
                self._push(
                    int(c),
                    now,
                    self.send_dest[cg[sel]],
                    code[sel],
                    out_vc[sel],
                    cg[sel],
                )
        pid = code >> _SHIFT
        tail = (code & _IDX_MASK) == self.pk_size[pid - self.pk_base] - 1
        if tail.any():
            trows = crows[tail]
            tg = cg[tail]
            tnt = ~ct[tail]
            if tnt.any():
                self.ovc_mask[tg[tnt]] &= ~(_I64_ONE << out_vc[tail][tnt])
            self.state[trows] = IDLE
            self.rc_out[trows] = -1
            self.rc_ovc[trows] = -1
            self.gout[trows] = -1
            self._n_active -= trows.size
            resp = trows[self.qlen[trows] > 0]
            if resp.size:
                self.state[resp] = ROUTE
                self._sched_rc(
                    resp, self.rc_delay_respawn[resp // self.V], now
                )

    # ------------------------------------------------------------------
    # Packet store
    # ------------------------------------------------------------------

    def _set_packets(self, base, src, dst, size, create) -> None:
        self.pk_base = base
        self.pk_src = np.asarray(src, dtype=np.int64)
        self.pk_dst = np.asarray(dst, dtype=np.int64)
        self.pk_size = np.asarray(size, dtype=np.int64)
        self.pk_create = np.asarray(create, dtype=np.int64)
        n = self.pk_dst.size
        self.pk_inject = np.full(n, -1, dtype=np.int64)
        self.pk_arrive = np.full(n, -1, dtype=np.int64)

    # ------------------------------------------------------------------
    # Run drivers
    # ------------------------------------------------------------------

    def run_bernoulli(
        self, injector, warmup_cycles: int, measure_cycles: int,
        drain_cycles: int,
    ) -> RunStats:
        """Mirror of ``Simulator.run``, telemetry windows included."""
        # Pre-generate the whole Bernoulli stream. The RNG consumption
        # order is identical to the scalar driver's per-cycle loop, and
        # packet ids are drawn from the same global counter.
        size = injector.packet_size_flits
        total = warmup_cycles + measure_cycles
        pre = self._c_pregen(injector, total)
        if pre is not None:
            ev_cycle_a, ev_term, ev_dst, ev_gid = pre
            n = len(ev_gid)
            base = ev_gid[0] if n else 0
            self._set_packets(base, ev_term, ev_dst,
                              np.full(n, size, dtype=np.int64), ev_cycle_a)
        else:
            rng = injector.rng
            draw = rng.random
            probability = injector.packet_probability
            destination = injector.pattern.destination
            ids = packet_module._packet_ids
            T = self.T
            ev_cycle = []
            ev_term = []
            ev_dst = []
            ev_gid = []
            terminals = range(T)
            for c in range(total):
                for src in terminals:
                    if draw() >= probability:
                        continue
                    dst = destination(src, rng)
                    if dst == src:  # Packet() would reject this
                        raise AssertionError("pattern produced self-traffic")
                    ev_cycle.append(c)
                    ev_term.append(src)
                    ev_dst.append(dst)
                    ev_gid.append(next(ids))
            n = len(ev_gid)
            base = ev_gid[0] if n else 0
            self._set_packets(
                base, ev_term, ev_dst, [size] * n, ev_cycle
            )
            ev_cycle_a = np.asarray(ev_cycle, dtype=np.int64)
        starts = np.searchsorted(ev_cycle_a, np.arange(total + 1))

        cstate = self._c_build(ev_cycle_a, np.asarray(ev_term, np.int64))
        if cstate is not None:
            return self._c_run_bernoulli(
                cstate, starts, size, warmup_cycles, measure_cycles,
                drain_cycles,
            )

        def offers(c):
            for e in range(starts[c], starts[c + 1]):
                self._offer(ev_term[e], ev_gid[e], size)

        for c in range(warmup_cycles):
            offers(c)
            self._step()
        measure_start = self.cycle
        measure_end = measure_start + measure_cycles
        stats = RunStats(
            measure_start=measure_start,
            measure_end=measure_end,
            n_terminals=T,
        )
        delivered_before = self.delivered_total
        for c in range(warmup_cycles, total):
            offers(c)
            self._step()
        stats.flits_delivered = self.delivered_total - delivered_before
        in_window = int(
            starts[total] - starts[warmup_cycles]
        )
        stats.flits_offered = in_window * size
        stats.packets_created = in_window
        for _ in range(drain_cycles):
            if self.inflight == 0:
                break
            self._step()
        self._finish(stats)
        return stats

    # ------------------------------------------------------------------
    # Compiled hot loop (see repro.netsim._fast_step)
    # ------------------------------------------------------------------

    _C_KIND = {"rf": 0, "tf": 1, "inj": 2, "rc": 3, "tc": 4}

    def _c_pregen(self, injector, total: int):
        """Pre-generate the Bernoulli stream in C, or ``None``.

        Only the ``uniform`` pattern is transliterated (the kernel
        replays CPython's MT19937 bit-for-bit and hands the advanced
        state back to the Python RNG); every other pattern uses the
        Python loop. Packet ids are drawn afterwards — the global
        counter is sequential, so consuming ``n`` ids in one slice is
        identical to drawing them inside the loop.
        """
        kernel = _fast_step.load_kernel() if self.use_c else None
        if kernel is None or self.T < 2:
            return None
        pattern = injector.pattern
        fn = getattr(pattern, "destination_fn", None)
        if (
            getattr(fn, "__module__", "") != "repro.netsim.traffic"
            or getattr(fn, "__qualname__", "") != "uniform.<locals>.dest"
            or pattern.n_terminals != self.T
        ):
            return None
        ffi, lib = kernel
        rng = injector.rng
        version, internal, gauss = rng.getstate()
        if version != 3 or len(internal) != 625:
            return None
        mt = np.array(internal[:624], dtype=np.uint32)
        mti = np.array([internal[624]], dtype=np.int64)
        cap = total * self.T
        ev_when = np.empty(cap, dtype=np.int64)
        ev_term = np.empty(cap, dtype=np.int64)
        ev_dst = np.empty(cap, dtype=np.int64)
        n = int(
            lib.pregen_uniform(
                ffi.cast("uint32_t *", mt.ctypes.data),
                ffi.cast("int64_t *", mti.ctypes.data),
                total,
                self.T,
                injector.packet_probability,
                self.T,
                ffi.cast("int64_t *", ev_when.ctypes.data),
                ffi.cast("int64_t *", ev_term.ctypes.data),
                ffi.cast("int64_t *", ev_dst.ctypes.data),
            )
        )
        rng.setstate(
            (3, tuple(int(x) for x in mt) + (int(mti[0]),), gauss)
        )
        ev_gid = list(itertools.islice(packet_module._packet_ids, n))
        return ev_when[:n], ev_term[:n], ev_dst[:n], ev_gid

    def _c_build(self, ev_when, ev_term):
        """Build the C kernel's state block, or ``None`` to stay numpy.

        All core SoA arrays are shared by pointer, so the kernel
        advances exactly the buffers :meth:`_finish` /
        :meth:`_writeback` read afterwards. Only run-local structures
        (event rings, RC buckets, pending lists, the delivery log) are
        allocated here and exported back by :meth:`_c_export`.
        """
        kernel = _fast_step.load_kernel() if self.use_c else None
        if kernel is None or self.P > 64:
            return None
        ffi, lib = kernel
        st = ffi.new("FastState *")
        aux = {}

        def i64(arr):
            aux.setdefault("_keep", []).append(arr)
            return ffi.cast("int64_t *", arr.ctypes.data)

        def u64(arr):
            aux.setdefault("_keep", []).append(arr)
            return ffi.cast("uint64_t *", arr.ctypes.data)

        def i8(arr):
            aux.setdefault("_keep", []).append(arr)
            return ffi.cast("int8_t *", arr.ctypes.data)

        R, P, V, CAP, PV, T = self.R, self.P, self.V, self.CAP, self.PV, self.T
        RP, RPV = R * P, R * PV
        PVW = (PV + 63) // 64
        st.R, st.P, st.V, st.CAP, st.PV, st.PVW = R, P, V, CAP, PV, PVW
        st.T, st.RP, st.RPV = T, RP, RPV
        st.full_mask = int(self._full_mask)
        st.base = self.pk_base
        st.shift = _SHIFT
        st.idx_mask = _IDX_MASK
        st.st_idle, st.st_route, st.st_active = IDLE, ROUTE, ACTIVE

        st.qbuf, st.qhead, st.qlen = i64(self.qbuf), i64(self.qhead), i64(self.qlen)
        st.state = i8(self.state)
        st.rc_out, st.rc_ovc, st.gout = i64(self.rc_out), i64(self.rc_ovc), i64(self.gout)
        st.occ, st.ocred = i64(self.occ), i64(self.ocred)
        st.oterm = i8(self.oterm.view(np.int8))
        st.ovc_mask, st.vc_ptr = i64(self.ovc_mask), i64(self.vc_ptr)
        st.sa_ptr, st.fwd_g = i64(self.sa_ptr), i64(self.fwd_g)
        st.rc_delay = i64(self.rc_delay)
        st.rc_delay_respawn = i64(self.rc_delay_respawn)
        st.send_cls, st.send_dest = i64(self.send_cls), i64(self.send_dest)
        st.cred_cls, st.cred_dest = i64(self.cred_cls), i64(self.cred_dest)
        st.tcred, st.tvc = i64(self.tcred), i64(self.tvc)
        st.tsent, st.tpsent = i64(self.tsent), i64(self.tpsent)
        st.trecv, st.tbacklog = i64(self.trecv), i64(self.tbacklog)
        st.cur_pid, st.cur_idx = i64(self.cur_pid), i64(self.cur_idx)
        st.inj_cls, st.inj_dest = i64(self.inj_cls), i64(self.inj_dest)
        st.pk_dst, st.pk_size = i64(self.pk_dst), i64(self.pk_size)
        st.pk_inject, st.pk_arrive = i64(self.pk_inject), i64(self.pk_arrive)

        kind, params = self.network.route_spec
        if kind == "mesh":
            st.route_kind = 0
            st.rp0 = params["terminals_per_router"]
            st.rp1 = params["neighbor_channels"]
            st.rp2 = params["cols"]
        elif kind == "clos":
            st.route_kind = 1
            n = params["n_terminals"]
            k = params["ssc_radix"]
            down = k // 2
            spines = n // k
            st.rp0 = down
            st.rp1 = 2 * n // k
            st.rp2 = spines
            st.rp3 = down // spines
            st.rp4 = spines * (down // spines)
            st.rp5 = 1 if params["spine_selection"] == "adaptive" else 0
        elif kind == "single":
            st.route_kind = 2
        else:  # pragma: no cover - engine_for already rejected it
            return None

        n_ev = int(ev_when.size)
        st.n_ev, st.ev_index = n_ev, 0
        aux["ev_when"] = ev_when.astype(np.int64, copy=False)
        aux["ev_term"] = ev_term
        st.ev_when = i64(aux["ev_when"])
        st.ev_term = i64(aux["ev_term"])
        aux["pend_next"] = np.full(max(n_ev, 1), -1, dtype=np.int64)
        aux["pend_head"] = np.full(T, -1, dtype=np.int64)
        aux["pend_tail"] = np.full(T, -1, dtype=np.int64)
        st.pend_next = i64(aux["pend_next"])
        st.pend_head = i64(aux["pend_head"])
        st.pend_tail = i64(aux["pend_tail"])
        aux["log_term"] = np.zeros(max(n_ev, 1), dtype=np.int64)
        aux["log_pidx"] = np.zeros(max(n_ev, 1), dtype=np.int64)
        st.log_term = i64(aux["log_term"])
        st.log_pidx = i64(aux["log_pidx"])
        st.log_count = 0

        # Delay-class rings, sized so a class can hold every in-flight
        # batch: each source port/terminal sends at most one entry per
        # cycle and entries live `delay` cycles.
        n_cls = len(self._cls_kind)
        offs = np.zeros(n_cls, dtype=np.int64)
        caps = np.zeros(n_cls, dtype=np.int64)
        off = 0
        for ci, (cls_kind, delay) in enumerate(
            zip(self._cls_kind, self._cls_delay)
        ):
            if cls_kind in ("rf", "tf"):
                cnt = int(np.count_nonzero(self.send_cls == ci))
            elif cls_kind == "inj":
                cnt = int(np.count_nonzero(self.inj_cls == ci))
            else:
                cnt = int(np.count_nonzero(self.cred_cls == ci))
            offs[ci] = off
            caps[ci] = (delay + 2) * max(cnt, 1)
            off += caps[ci]
        st.n_cls = n_cls
        aux["cls_kind"] = np.array(
            [self._C_KIND[k] for k in self._cls_kind], dtype=np.int64
        )
        aux["cls_delay"] = np.array(self._cls_delay, dtype=np.int64)
        aux["cls_off"], aux["cls_cap"] = offs, caps
        aux["cls_head"] = np.zeros(n_cls, dtype=np.int64)
        aux["cls_tail"] = np.zeros(n_cls, dtype=np.int64)
        aux["cls_hidx"] = np.zeros(n_cls, dtype=np.int64)
        aux["cls_tidx"] = np.zeros(n_cls, dtype=np.int64)
        st.cls_kind = i64(aux["cls_kind"])
        st.cls_delay = i64(aux["cls_delay"])
        st.cls_off, st.cls_cap = i64(offs), i64(caps)
        st.cls_head = i64(aux["cls_head"])
        st.cls_tail = i64(aux["cls_tail"])
        st.cls_hidx = i64(aux["cls_hidx"])
        st.cls_tidx = i64(aux["cls_tidx"])
        aux["pv_port"] = np.arange(PV, dtype=np.int64) // V
        aux["g_r"] = np.arange(RP, dtype=np.int64) // P
        aux["g_p"] = np.arange(RP, dtype=np.int64) % P
        aux["row_r"] = np.arange(RPV, dtype=np.int64) // PV
        st.pv_port = i64(aux["pv_port"])
        st.g_r, st.g_p = i64(aux["g_r"]), i64(aux["g_p"])
        st.row_r = i64(aux["row_r"])
        for name in ("ring_cycle", "ring_dest", "ring_code", "ring_vc",
                     "ring_src"):
            aux[name] = np.zeros(max(off, 1), dtype=np.int64)
            setattr(st, name, i64(aux[name]))

        dmax = int(
            max(self.rc_delay.max(), self.rc_delay_respawn.max())
        )
        W = dmax + 1
        st.W = W
        aux["W"] = W
        aux["bk_rows"] = np.zeros(W * RPV, dtype=np.int64)
        aux["bk_cnt"] = np.zeros(W, dtype=np.int64)
        aux["stall_rows"] = np.zeros(RPV, dtype=np.int64)
        st.bk_rows, st.bk_cnt = i64(aux["bk_rows"]), i64(aux["bk_cnt"])
        st.stall_rows = i64(aux["stall_rows"])
        st.stall_cnt = 0
        st.RPVW = (RPV + 63) // 64
        aux["va_mask"] = np.zeros(st.RPVW, dtype=np.uint64)
        st.va_mask = u64(aux["va_mask"])

        aux["cand"] = np.zeros(RP * PVW, dtype=np.uint64)
        aux["aop"] = np.zeros(R, dtype=np.uint64)
        aux["cg_stamp"] = np.full(RP, -1, dtype=np.int64)
        st.cand, st.aop = u64(aux["cand"]), u64(aux["aop"])
        st.cg_stamp = i64(aux["cg_stamp"])

        tel = self.telemetry
        st.tel = 0 if tel is None else 1
        st.tel_interval = 1 if tel is None else tel.sample_interval
        for name, count in (
            ("tel_rc_wait", R),
            ("tel_va_grants", R),
            ("tel_va_stalls", R),
            ("tel_rc_waiting", R),
            ("tel_credit_stall", RP),
            ("tel_sa_requests", RP),
            ("tel_channel_load", RP),
            ("tel_vc_grants", R * V),
            ("tel_occ_sum", RP),
            ("tel_occ_peak", RP),
            ("tel_vc_occ_sum", R * V),
            ("tel_term_stall", T),
        ):
            aux[name] = np.zeros(count, dtype=np.int64)
            setattr(st, name, i64(aux[name]))
        st.tel_waiting_total = 0
        st.tel_samples = 0
        st.tel_backlog_sum = 0
        st.tel_backlog_peak = 0
        st.tel_backlog_samples = 0

        st.cycle, st.inflight = self.cycle, self.inflight
        st.delivered_total = self.delivered_total
        st.n_active, st.total_backlog = self._n_active, self._total_backlog
        st.err_a = 0
        return (ffi, lib, st, aux)

    def _c_check(self, rc: int, st) -> None:
        if rc >= 0:
            return
        if rc == -1:
            g = int(st.err_a)
            raise AssertionError(
                f"router {g // self.P} port {g % self.P}: buffer overflow "
                "(credit protocol violated)"
            )
        if rc == -2:
            raise AssertionError("body flit reached an idle VC front")
        if rc == -3:
            raise AssertionError(
                f"route function returned invalid port {int(st.err_a)}"
            )
        if rc == -4:
            raise AssertionError(
                f"output port {int(st.err_a) % self.P} is not wired"
            )
        raise RuntimeError(f"netsim C kernel internal error {rc}")

    def _c_run_bernoulli(
        self, cstate, starts, size, warmup_cycles, measure_cycles,
        drain_cycles,
    ) -> RunStats:
        ffi, lib, st, aux = cstate
        tel = self.telemetry
        if tel is not None:
            tel.attach(self.network)
            self._tel_boundary(cstate, tel)
            tel.begin_window("warmup", int(st.cycle))
            self._tel_reset_sampled(cstate)
        self._c_check(lib.fast_run(st, 0, warmup_cycles), st)
        measure_start = int(st.cycle)
        stats = RunStats(
            measure_start=measure_start,
            measure_end=measure_start + measure_cycles,
            n_terminals=self.T,
        )
        if tel is not None:
            self._tel_boundary(cstate, tel)
            tel.begin_window("measurement", int(st.cycle))
            self._tel_reset_sampled(cstate)
        delivered_before = int(st.delivered_total)
        self._c_check(lib.fast_run(st, 0, measure_cycles), st)
        stats.flits_delivered = int(st.delivered_total) - delivered_before
        total = warmup_cycles + measure_cycles
        in_window = int(starts[total] - starts[warmup_cycles])
        stats.flits_offered = in_window * size
        stats.packets_created = in_window
        if tel is not None:
            self._tel_boundary(cstate, tel)
            tel.begin_window("drain", int(st.cycle))
            self._tel_reset_sampled(cstate)
        self._c_check(lib.fast_run(st, 1, drain_cycles), st)
        self._c_export(cstate)
        self._finish(stats)
        if tel is not None:
            # _writeback restored the real terminal objects above, so
            # the final boundary only refreshes the counter views.
            self._tel_boundary(cstate, tel, terminals=False)
            self._tel_histograms(tel)
            tel.finish(int(st.cycle))
        return stats

    # ------------------------------------------------------------------
    # Telemetry bridging (kernel counters -> Telemetry machinery)
    # ------------------------------------------------------------------

    def _tel_boundary(self, cstate, tel, terminals: bool = True) -> None:
        """Sync the kernel's telemetry counters into the sink's views.

        Called at every window boundary *before* ``begin_window`` /
        ``finish``, so the standard snapshot/delta machinery in
        :mod:`repro.netsim.telemetry` sees exactly the state the scalar
        engine's live counters would hold at that cycle.
        """
        ffi, lib, st, aux = cstate
        P, V, T = self.P, self.V, self.T
        sa_requests = aux["tel_sa_requests"]
        channel_load = aux["tel_channel_load"]
        credit_stall = aux["tel_credit_stall"]
        vc_grants = aux["tel_vc_grants"]
        occ_sum = aux["tel_occ_sum"]
        occ_peak = aux["tel_occ_peak"]
        vc_occ_sum = aux["tel_vc_occ_sum"]
        samples = int(st.tel_samples)
        for ri, view in enumerate(tel._routers):
            g0, g1 = ri * P, (ri + 1) * P
            v0, v1 = ri * V, (ri + 1) * V
            view.sa_requests = sa_requests[g0:g1].tolist()
            view.channel_load = channel_load[g0:g1].tolist()
            view.credit_stall_cycles = credit_stall[g0:g1].tolist()
            view.vc_grants = vc_grants[v0:v1].tolist()
            view.va_grants = int(aux["tel_va_grants"][ri])
            view.va_stalls = int(aux["tel_va_stalls"][ri])
            view.rc_wait_cycles = int(aux["tel_rc_wait"][ri])
            view.occ_sum = occ_sum[g0:g1].tolist()
            view.occ_peak = occ_peak[g0:g1].tolist()
            view.vc_occ_sum = vc_occ_sum[v0:v1].tolist()
            view.samples = samples
        tel.terminal_credit_stalls = aux["tel_term_stall"].tolist()
        tel._backlog_sum = int(st.tel_backlog_sum)
        tel._backlog_peak = int(st.tel_backlog_peak)
        tel._backlog_samples = int(st.tel_backlog_samples)
        if terminals:
            # Mid-run the object-model terminals are stale; mirror the
            # counters the terminal snapshot reads (sums only — the
            # run-final writeback installs the real packet lists).
            n_log = int(st.log_count)
            received = np.bincount(
                aux["log_term"][:n_log], minlength=T
            ) if n_log else np.zeros(T, dtype=np.int64)
            for ti, terminal in enumerate(self.network.terminals):
                terminal.flits_sent = int(self.tsent[ti])
                terminal.flits_received = int(self.trecv[ti])
                terminal.packets_sent = int(self.tpsent[ti])
                terminal.packets_received = range(int(received[ti]))

    def _tel_reset_sampled(self, cstate) -> None:
        """Zero the kernel's sampled accumulators (window start)."""
        ffi, lib, st, aux = cstate
        for name in ("tel_occ_sum", "tel_occ_peak", "tel_vc_occ_sum"):
            aux[name][:] = 0
        st.tel_samples = 0
        st.tel_backlog_sum = 0
        st.tel_backlog_peak = 0
        st.tel_backlog_samples = 0

    def _tel_histograms(self, tel) -> None:
        """Replay the delivery log into the window latency histograms.

        The scalar engine records each packet at tail arrival; window
        resolution keys on the packet's *creation* cycle only, and the
        window containing that cycle already exists by arrival time, so
        replaying deliveries post-run lands every packet in the same
        window (histogram insertion is commutative).
        """
        windows = tel._windows
        if not windows or not self._deliv_log:
            return
        idx = np.concatenate([dpid for _, dpid in self._deliv_log])
        idx -= self.pk_base
        create = self.pk_create[idx]
        latency = self.pk_arrive[idx] - create
        # Window starts are non-decreasing (begin_window takes monotone
        # cycles), so searchsorted reproduces _window_for_creation —
        # including its clamp of pre-first-window creations to window 0.
        starts = np.array([w.start for w in windows], dtype=np.int64)
        which = np.searchsorted(starts, create, side="right") - 1
        which = np.maximum(which, 0)
        for w_index, window in enumerate(windows):
            mask = which == w_index
            if not mask.any():
                continue
            lat = latency[mask]
            window.histogram.add_many(lat)
            if window.flows is not None:
                src = self.pk_src[idx[mask]].tolist()
                dst = self.pk_dst[idx[mask]].tolist()
                for s, d, one in zip(src, dst, lat.tolist()):
                    key = f"{s}->{d}"
                    histogram = window.flows.get(key)
                    if histogram is None:
                        histogram = window.flows[key] = LatencyHistogram()
                    histogram.add(one)

    def _c_export(self, cstate) -> None:
        """Fold the kernel's run-local state back into the engine.

        The SoA arrays were mutated in place; this reconstructs the
        Python-side structures (:attr:`_rc_buckets`, :attr:`_va_stalled`,
        the delay-class deques, pending queues and delivery log) so
        :meth:`_finish` / :meth:`_writeback` behave as if the numpy
        step loop had run.
        """
        ffi, lib, st, aux = cstate
        self.cycle = now = int(st.cycle)
        self.inflight = int(st.inflight)
        self.delivered_total = int(st.delivered_total)
        self._n_active = int(st.n_active)
        self._total_backlog = int(st.total_backlog)
        base = self.pk_base

        W = aux["W"]
        RPV = self.R * self.PV
        buckets = {}
        bk_cnt = aux["bk_cnt"]
        bk_rows = aux["bk_rows"]
        for w in range(W):
            cnt = int(bk_cnt[w])
            if cnt:
                ready = now + ((w - now) % W)
                buckets[ready] = [bk_rows[w * RPV:w * RPV + cnt].copy()]
        self._rc_buckets = buckets
        sc = int(st.stall_cnt)
        self._va_stalled = (
            aux["stall_rows"][:sc].copy() if sc else None
        )

        ring_cycle = aux["ring_cycle"]
        ring_dest = aux["ring_dest"]
        ring_code = aux["ring_code"]
        ring_vc = aux["ring_vc"]
        ring_src = aux["ring_src"]
        for ci, q in enumerate(self._cls_q):
            q.clear()
            head = int(aux["cls_head"][ci])
            tail = int(aux["cls_tail"][ci])
            off = int(aux["cls_off"][ci])
            cap = int(aux["cls_cap"][ci])
            flit_like = self._cls_kind[ci] in ("rf", "tf", "inj")
            for pos in range(head, tail):
                i = off + pos % cap
                dest = ring_dest[i:i + 1].copy()
                if flit_like:
                    q.append((
                        int(ring_cycle[i]),
                        dest,
                        ring_code[i:i + 1].copy(),
                        ring_vc[i:i + 1].copy(),
                        ring_src[i:i + 1].copy(),
                    ))
                else:
                    q.append((int(ring_cycle[i]), dest, None, None, None))

        n_log = int(st.log_count)
        self._deliv_log = (
            [(aux["log_term"][:n_log].copy(),
              aux["log_pidx"][:n_log] + base)]
            if n_log
            else []
        )

        pend_next = aux["pend_next"]
        pend_head = aux["pend_head"]
        for t in range(self.T):
            e = int(pend_head[t])
            pend = self._pending[t]
            while e >= 0:
                pend.append(base + e)
                e = int(pend_next[e])
        # The kernel stores packet *indexes* in cur_pid; the engine's
        # writeback expects absolute packet ids.
        live = self.cur_pid >= 0
        self.cur_pid[live] += base

    def run_replay(self, schedule, max_cycles: int):
        """Mirror of ``replay_trace``'s driving loop (no telemetry).

        ``schedule`` is the sorted list of ``(inject_cycle, event)``
        pairs; packets are created (consuming global packet ids) at
        their injection cycles exactly as the scalar loop does — under
        ``max_cycles`` truncation the global id counter stops at the
        same value, which is why the stream cannot be pre-drawn here.
        """
        ids = packet_module._packet_ids
        n = len(schedule)
        src = np.zeros(n, dtype=np.int64)
        dst = np.zeros(n, dtype=np.int64)
        size = np.zeros(n, dtype=np.int64)
        when = np.zeros(n, dtype=np.int64)
        for i, (cycle, event) in enumerate(schedule):
            when[i] = cycle
            src[i] = event.src
            dst[i] = event.dst
            size[i] = event.size_flits
        index = 0
        gid_list = []
        base = None
        # Packet ids are consumed at injection time (in schedule
        # order), so pre-size the store and fill create cycles lazily.
        self._set_packets(0, src, dst, size, when)
        while index < n or self.inflight > 0:
            now = self.cycle
            while index < n and when[index] <= now:
                gid = next(ids)
                if base is None:
                    base = gid
                    self.pk_base = base
                gid_list.append(gid)
                self._offer(int(src[index]), gid, int(size[index]))
                index += 1
            self._step()
            if self.cycle >= max_cycles:
                break
        stats = RunStats(
            measure_start=0, measure_end=self.cycle, n_terminals=self.T
        )
        # Only events actually offered count (max_cycles truncation may
        # leave a tail of the schedule unoffered, as in the scalar loop).
        stats.packets_created = index
        stats.flits_offered = int(size[:index].sum())
        self._finish(stats, window_filter=False)
        return stats

    # ------------------------------------------------------------------
    # Finalization: stats + write the object model back
    # ------------------------------------------------------------------

    def _delivered_sorted(self):
        """Delivered ``(terminal, packet id)`` arrays, terminal-major.

        Within a terminal, packets keep their arrival order (the
        stable sort preserves the delivery log's global order) — the
        same order the scalar engine's per-terminal
        ``packets_received`` lists produce.
        """
        log = self._deliv_log
        if not log:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        if len(log) == 1:
            dterm, dpid = log[0]
        else:
            dterm = np.concatenate([t for t, _ in log])
            dpid = np.concatenate([p for _, p in log])
        order = np.argsort(dterm, kind="stable")
        return dterm[order], dpid[order]

    def _finish(self, stats: RunStats, window_filter: bool = True) -> None:
        dterm, dpid = self._delivered_sorted()
        idx = dpid - self.pk_base
        create = self.pk_create[idx]
        lat = self.pk_arrive[idx] - create
        if window_filter:
            m = (create >= stats.measure_start) & (
                create < stats.measure_end
            )
            stats.latencies_cycles.extend(lat[m].tolist())
        else:
            stats.latencies_cycles.extend(lat.tolist())
            stats.flits_delivered = int(self.pk_size[idx].sum())
        self._writeback(dterm, dpid)

    def _packet_factory(self):
        cache = {}
        base = self.pk_base
        src = self.pk_src
        dst = self.pk_dst
        size = self.pk_size
        create = self.pk_create
        inject = self.pk_inject
        arrive = self.pk_arrive

        def mk(pid: int) -> Packet:
            packet = cache.get(pid)
            if packet is None:
                i = pid - base
                packet = object.__new__(Packet)
                packet.packet_id = pid
                packet.src = int(src[i])
                packet.dst = int(dst[i])
                packet.size_flits = int(size[i])
                packet.create_cycle = int(create[i])
                packet.inject_cycle = int(inject[i])
                packet.arrive_cycle = int(arrive[i])
                cache[pid] = packet
            return packet

        return mk

    def _writeback(self, dterm, dpid) -> None:
        """Write engine state back into the object model.

        The written-back network is fully resumable: router queues, VC
        allocation state, arbiter pointers, in-flight link/credit
        traffic and the event calendars are all reconstructed, so a
        caller stepping the network afterwards (or a second ``run``)
        sees exactly what the scalar engine would have left behind.
        """
        network = self.network
        P, V, PV, CAP = self.P, self.V, self.PV, self.CAP
        mk = self._packet_factory()
        now = self.cycle
        network.cycle = now

        state = self.state
        qlen = self.qlen
        for ri, router in enumerate(network.routers):
            base_g = ri * P
            base_row = base_g * V
            router.flits_forwarded = int(
                self.fwd_g[base_g:base_g + P].sum()
            )
            router._buffered_total = int(self.occ[base_g:base_g + P].sum())
            router.occupancy = self.occ[base_g:base_g + P].tolist()
            router.out_credits = self.ocred[base_g:base_g + P].tolist()
            router.rc_pending = set()
            router.active_out_ports = set()
            state_l = state[base_row:base_row + PV].tolist()
            out_p_l = self.rc_out[base_row:base_row + PV].tolist()
            out_v_l = self.rc_ovc[base_row:base_row + PV].tolist()
            vc_ptr_l = self.vc_ptr[base_g:base_g + P].tolist()
            sa_ptr_l = self.sa_ptr[base_g:base_g + P].tolist()
            for p in range(P):
                router._vc_arbiters[p]._pointer = vc_ptr_l[p]
                router._sa_arbiters[p]._pointer = sa_ptr_l[p]
                router.ovc_owner[p] = [None] * V
                router.sa_candidates[p] = set()
                s0 = p * V
                router.ivc_state[p] = state_l[s0:s0 + V]
                router.ivc_out_port[p] = out_p_l[s0:s0 + V]
                router.ivc_out_vc[p] = out_v_l[s0:s0 + V]
                router.queues[p] = [deque() for _ in range(V)]
            # Buffered flits are sparse after a drain: rebuild only
            # the occupied queues.
            occupied = np.flatnonzero(qlen[base_row:base_row + PV])
            for pv in occupied.tolist():
                row = base_row + pv
                p, v = divmod(pv, V)
                queue = router.queues[p][v]
                head = int(self.qhead[row])
                for k in range(int(qlen[row])):
                    code = int(self.qbuf[row * CAP + (head + k) % CAP])
                    queue.append(Flit(mk(code >> _SHIFT), code & _IDX_MASK))
            # Ownership and SA candidacy re-derive from ACTIVE rows.
            rows = np.flatnonzero(
                state[base_row:base_row + PV] == ACTIVE
            )
            for pv in rows.tolist():
                row = base_row + pv
                p, v = divmod(pv, V)
                out_port = out_p_l[pv]
                out_vc = out_v_l[pv]
                if not router.out_is_terminal[out_port]:
                    router.ovc_owner[out_port][out_vc] = (p, v)
                if qlen[row] > 0:
                    router.sa_candidates[out_port].add((p, v))
                    router.active_out_ports.add(out_port)
        # Pending RC rows (bucketed by ready cycle) and VA-stalled rows.
        def _pend(row: int, ready: int) -> None:
            r, pv = divmod(row, PV)
            p, v = divmod(pv, V)
            router = network.routers[r]
            router.rc_pending.add((p, v))
            router.rc_ready[p][v] = ready
        for ready, parts in self._rc_buckets.items():
            for rows in parts:
                for row in rows.tolist():
                    _pend(row, ready)
        if self._va_stalled is not None:
            for row in self._va_stalled.tolist():
                _pend(row, now)

        network._link_events.clear()
        network._credit_events.clear()
        for link, _, _, _ in network.links:
            link._in_flight.clear()
        for channel, _, _ in network._credit_sinks:
            channel._in_flight.clear()
        bounds = np.searchsorted(dterm, np.arange(self.T + 1))
        for ti, terminal in enumerate(network.terminals):
            if terminal.credit_channel is not None:
                terminal.credit_channel._in_flight.clear()
            terminal.flits_sent = int(self.tsent[ti])
            terminal.packets_sent = int(self.tpsent[ti])
            terminal.flits_received = int(self.trecv[ti])
            terminal.credits = int(self.tcred[ti])
            terminal._next_vc = int(self.tvc[ti])
            terminal.packets_received = _LazyPackets(
                mk, dpid[bounds[ti]:bounds[ti + 1]]
            )
            queue = deque()
            if self.tbacklog[ti] > 0:
                pid = int(self.cur_pid[ti])
                packet = mk(pid)
                for k in range(int(self.cur_idx[ti]), packet.size_flits):
                    queue.append(Flit(packet, k))
                for pid in self._pending[ti]:
                    packet = mk(int(pid))
                    for k in range(packet.size_flits):
                        queue.append(Flit(packet, k))
            terminal.source_queue = queue
        # In-flight flits and credits back onto their wires.
        routers = network.routers
        terminals = network.terminals
        link_events = network._link_events
        credit_events = network._credit_events
        for ci, q in enumerate(self._cls_q):
            kind = self._cls_kind[ci]
            for entry in q:
                arrival, dest, code, vc, src = entry
                if kind in ("rf", "tf", "inj"):
                    for j in range(dest.size):
                        s = int(src[j])
                        if s >= 0:
                            link = routers[s // P].out_link[s % P]
                        else:
                            link = terminals[-1 - s].inject_link
                        flit = Flit(
                            mk(int(code[j]) >> _SHIFT),
                            int(code[j]) & _IDX_MASK,
                        )
                        flit.vc = int(vc[j])
                        if not link._in_flight:
                            link_events.setdefault(arrival, []).append(
                                self._link_index[id(link)]
                            )
                        link._in_flight.append((arrival, flit))
                elif kind == "rc":
                    for j in range(dest.size):
                        g = int(dest[j])
                        channel = routers[g // P].out_credit_channel[g % P]
                        if not channel._in_flight:
                            credit_events.setdefault(arrival, []).append(
                                self._credit_sink_index[id(channel)]
                            )
                        channel._in_flight.append((arrival, 1))
                else:  # 'tc'
                    for j in range(dest.size):
                        channel = terminals[int(dest[j])].credit_channel
                        channel._in_flight.append((arrival, 1))
