"""Traffic terminals: injection sources and ejection sinks."""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.netsim.link import CreditChannel, Link
from repro.netsim.packet import Flit, Packet, flits_of


class Terminal:
    """A host NIC attached to one switch port.

    Packets wait in an unbounded source queue; flits enter the router
    at most one per cycle, gated by the router port's shared-buffer
    credits. Packet latency is measured creation-to-tail-arrival, so
    source queueing counts (as in Booksim's packet latency).
    """

    def __init__(self, terminal_id: int, num_vcs: int):
        self.terminal_id = terminal_id
        self.num_vcs = num_vcs
        self.source_queue: Deque[Flit] = deque()
        self.inject_link: Optional[Link] = None
        self.credit_channel: Optional[CreditChannel] = None
        self.credits = 0
        self._next_vc = terminal_id % max(num_vcs, 1)
        # Statistics.
        self.packets_sent = 0
        self.flits_sent = 0
        self.flits_received = 0
        self.packets_received: List[Packet] = []
        #: Optional :class:`~repro.netsim.telemetry.Telemetry` sink;
        #: ``None`` (the default) keeps the hot paths untouched.
        self.telemetry = None

    def attach(
        self, link: Link, credit_channel: CreditChannel, initial_credits: int
    ) -> None:
        self.inject_link = link
        self.credit_channel = credit_channel
        self.credits = initial_credits

    def offer_packet(self, packet: Packet) -> None:
        """Queue a packet's flits for injection."""
        self.source_queue.extend(flits_of(packet))

    def inject(self, now: int) -> None:
        """Send at most one flit into the router this cycle.

        Credit returns are absorbed lazily here rather than polled
        every cycle: the cumulative credit count at decision time is
        identical, and it lets the network skip idle terminals
        entirely (the active-set scheduler).
        """
        queue = self.source_queue
        channel = self.credit_channel
        if channel is not None and channel._in_flight:
            self.credits += channel.deliver(now)
        if not queue:
            return
        if self.credits <= 0:
            tele = self.telemetry
            if tele is not None:
                tele.terminal_credit_stalls[self.terminal_id] += 1
            return
        flit = queue.popleft()
        if flit.is_head:
            # A whole packet rides one VC; rotate across packets.
            self._next_vc = (self._next_vc + 1) % self.num_vcs
            flit.packet.inject_cycle = now
        flit.vc = self._next_vc
        self.credits -= 1
        self.flits_sent += 1
        if flit.is_tail:
            self.packets_sent += 1
        self.inject_link.send(flit, now)

    def receive(self, flit: Flit, now: int) -> None:
        """Absorb an ejected flit; record latency on the tail."""
        self.flits_received += 1
        if flit.is_tail:
            packet = flit.packet
            packet.arrive_cycle = now
            self.packets_received.append(packet)
            tele = self.telemetry
            if tele is not None:
                tele.record_latency(packet)

    @property
    def backlog_flits(self) -> int:
        return len(self.source_queue)
