"""Compiled hot loop for the vectorized netsim engine.

:mod:`repro.netsim.fast_core` keeps the router pipeline in numpy
struct-of-arrays, but at mesh/Clos sizes the per-cycle working sets are
tens of rows: numpy's per-call overhead (~1-2us x ~150 calls/cycle)
dominates and caps the speedup near 2x. This module compiles the same
per-cycle semantics into a small C kernel that walks the *same* SoA
buffers in place, which removes the interpreter from the hot loop
entirely (the driver calls into C once per warmup/measure/drain span,
not per cycle).

Design constraints:

* **No new dependencies.** The kernel is built with the system C
  compiler through :mod:`cffi`'s ABI mode (``ffi.dlopen`` on a plain
  shared object) — both already ship in the environment. When either
  is missing, :func:`load_kernel` returns ``None`` and the engine runs
  its pure-numpy step loop instead; the scalar object simulator remains
  the oracle below that. ``REPRO_NETSIM_NO_CC=1`` forces the numpy
  path (used by the differential tests to pin all three layers).
* **Bit parity.** The C step is a transliteration of the *scalar*
  object engine's cycle (which the numpy step already mirrors):
  deliver link flits, deliver credits, inject, then VC-allocate and
  switch-allocate per router in ascending order. Sequential C code
  reproduces the object engine's iteration order directly — no batched
  tie-breaking tricks are needed.
* **Shared state.** All SoA arrays are numpy buffers owned by
  ``FastEngine``; C mutates them through raw pointers, so finalization
  (stats + object-model writeback) is engine code reading the same
  arrays it would have written itself. Auxiliary C state (event rings,
  RC buckets, pending lists, the delivery log) is exported back into
  the engine's Python-side structures after the run.

The compiled object is cached under ``_cc_cache/`` next to this file,
keyed by a hash of the C source, so the toolchain runs once per source
revision, not once per process.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

#: Set to ``"1"`` to skip the compiled kernel (pure-numpy fast path).
NO_CC_ENV = "REPRO_NETSIM_NO_CC"

# The struct below is both the cffi cdef and (verbatim) part of the C
# source, so the two can never drift apart.
_CDEF = """
typedef struct {
    /* shape + constants */
    int64_t R, P, V, CAP, PV, PVW, T, RP, RPV, W;
    int64_t full_mask, base, shift, idx_mask;
    int64_t st_idle, st_route, st_active;
    /* per-input-VC rows */
    int64_t *qbuf, *qhead, *qlen;
    int8_t  *state;
    int64_t *rc_out, *rc_ovc, *gout;
    /* per-port groups (g = router*P + port) */
    int64_t *occ, *ocred;
    int8_t  *oterm;
    int64_t *ovc_mask, *vc_ptr, *sa_ptr, *fwd_g;
    int64_t *rc_delay, *rc_delay_respawn;
    int64_t *send_cls, *send_dest, *cred_cls, *cred_dest;
    /* terminals */
    int64_t *tcred, *tvc, *tsent, *tpsent, *trecv, *tbacklog;
    int64_t *cur_pid, *cur_idx, *inj_cls, *inj_dest;
    /* packet store (indexed by pidx = packet_id - base) */
    int64_t *pk_dst, *pk_size, *pk_inject, *pk_arrive;
    /* routing */
    int64_t route_kind;   /* 0 mesh, 1 clos, 2 single */
    int64_t rp0, rp1, rp2, rp3, rp4, rp5, rp6;
    /* pre-generated offer events (ascending cycle) */
    int64_t n_ev, ev_index;
    int64_t *ev_when, *ev_term;
    /* per-terminal pending-packet FIFO (linked by event index) */
    int64_t *pend_next, *pend_head, *pend_tail;
    /* delivery log (terminal, pidx) in arrival order */
    int64_t *log_term, *log_pidx, log_count;
    /* transport delay-class rings */
    int64_t n_cls;
    int64_t *cls_kind;    /* 0 rf, 1 tf, 2 inj, 3 rc, 4 tc */
    int64_t *cls_delay, *cls_off, *cls_cap, *cls_head, *cls_tail;
    int64_t *cls_hidx, *cls_tidx;   /* wrapped ring cursors */
    int64_t *ring_cycle, *ring_dest, *ring_code, *ring_vc, *ring_src;
    /* division-free lookups */
    int64_t *pv_port;     /* PV:  pv -> input port (pv / V) */
    int64_t *g_r, *g_p;   /* RP:  g -> router, g -> port */
    int64_t *row_r;       /* RPV: row -> router */
    /* RC completion buckets: ring of W slots, RPV rows each */
    int64_t *bk_rows, *bk_cnt;
    int64_t *stall_rows, stall_cnt;
    int64_t RPVW;
    uint64_t *va_mask;    /* RPVW words: rows pending VA this cycle */
    /* SA bookkeeping */
    uint64_t *cand;       /* RP * PVW candidate bitmask words */
    uint64_t *aop;        /* R words: out ports with candidates */
    int64_t *cg_stamp;    /* RP: cycle an input port last won SA */
    /* run counters */
    int64_t cycle, inflight, delivered_total, n_active, total_backlog;
    /* telemetry (tel == 0: every instrumentation branch is skipped) */
    int64_t tel, tel_interval;
    int64_t *tel_rc_wait;      /* R:  rc_wait_cycles per router */
    int64_t *tel_va_grants;    /* R */
    int64_t *tel_va_stalls;    /* R */
    int64_t *tel_rc_waiting;   /* R:  rows currently mid-RC-wait */
    int64_t tel_waiting_total;
    int64_t *tel_credit_stall; /* RP: credit_stall_cycles per port */
    int64_t *tel_sa_requests;  /* RP */
    int64_t *tel_channel_load; /* RP: SA grants per OUTPUT port */
    int64_t *tel_vc_grants;    /* R*V: SA grants per input VC */
    int64_t *tel_occ_sum;      /* RP: sampled, reset per window */
    int64_t *tel_occ_peak;     /* RP */
    int64_t *tel_vc_occ_sum;   /* R*V */
    int64_t tel_samples;
    int64_t tel_backlog_sum, tel_backlog_peak, tel_backlog_samples;
    int64_t *tel_term_stall;   /* T: injection credit stalls */
    /* error detail */
    int64_t err_a;
} FastState;

int64_t fast_run(FastState *s, int64_t mode, int64_t limit);
int64_t pregen_uniform(uint32_t *mt, int64_t *mti_io, int64_t total,
                       int64_t T, double probability,
                       int64_t n_terminals, int64_t *ev_when,
                       int64_t *ev_term, int64_t *ev_dst);
"""

_C_SOURCE = (
    """
#include <stdint.h>
#include <stdlib.h>
"""
    + _CDEF.replace("int64_t fast_run", "extern int64_t fast_run")
    + r"""
/* Error codes (negative); >= 0 is a normal span result. */
#define ERR_OVERFLOW   (-1)
#define ERR_IDLE_BODY  (-2)
#define ERR_BAD_ROUTE  (-3)
#define ERR_UNWIRED    (-4)
#define ERR_RING_FULL  (-5)

static inline int64_t ring_push(FastState *s, int64_t ci, int64_t now,
                                int64_t dest, int64_t code, int64_t vc,
                                int64_t src) {
    if (s->cls_tail[ci] - s->cls_head[ci] >= s->cls_cap[ci])
        return ERR_RING_FULL;
    int64_t i = s->cls_off[ci] + s->cls_tidx[ci];
    if (++s->cls_tidx[ci] == s->cls_cap[ci]) s->cls_tidx[ci] = 0;
    s->ring_cycle[i] = now + s->cls_delay[ci];
    s->ring_dest[i] = dest;
    s->ring_code[i] = code;
    s->ring_vc[i] = vc;
    s->ring_src[i] = src;
    s->cls_tail[ci]++;
    return 0;
}

static inline void sched_rc(FastState *s, int64_t row, int64_t delay,
                            int64_t now) {
    int64_t slot = (now + delay) % s->W;
    s->bk_rows[slot * s->RPV + s->bk_cnt[slot]++] = row;
    if (s->tel) {            /* row joins the RC-waiting population */
        s->tel_rc_waiting[s->row_r[row]]++;
        s->tel_waiting_total++;
    }
}

static inline void cand_set(FastState *s, int64_t g, int64_t pv) {
    s->cand[g * s->PVW + (pv >> 6)] |= (uint64_t)1 << (pv & 63);
    s->aop[s->g_r[g]] |= (uint64_t)1 << s->g_p[g];
}

static inline void cand_clear(FastState *s, int64_t g, int64_t pv) {
    s->cand[g * s->PVW + (pv >> 6)] &= ~((uint64_t)1 << (pv & 63));
    uint64_t any = 0;
    for (int64_t w = 0; w < s->PVW; w++) any |= s->cand[g * s->PVW + w];
    if (!any) s->aop[s->g_r[g]] &= ~((uint64_t)1 << s->g_p[g]);
}

static int64_t route_port(FastState *s, int64_t r, int64_t dst,
                          int64_t pid) {
    if (s->route_kind == 0) {            /* mesh: X-first XY */
        int64_t tpr = s->rp0, nc = s->rp1, cols = s->rp2;
        int64_t dst_router = dst / tpr;
        if (dst_router == r) return dst % tpr;
        int64_t my_c = r % cols, dst_c = dst_router % cols;
        int64_t direction;               /* 0=N, 1=E, 2=S, 3=W */
        if (my_c != dst_c) direction = dst_c > my_c ? 1 : 3;
        else direction = dst_router / cols > r / cols ? 2 : 0;
        return tpr + direction * nc + pid % nc;
    }
    if (s->route_kind == 1) {            /* clos */
        int64_t down = s->rp0, leaves = s->rp1, spines = s->rp2;
        int64_t cpp = s->rp3, n_up = s->rp4, adaptive = s->rp5;
        int64_t dst_leaf = dst / down;
        int64_t spine_out = dst_leaf * cpp + pid % cpp;
        if (r >= leaves) return spine_out;
        if (r == dst_leaf) return dst % down;
        if (adaptive) {                  /* first max = numpy argmax */
            int64_t best = 0, best_c = s->ocred[r * s->P + down];
            for (int64_t j = 1; j < n_up; j++) {
                int64_t c = s->ocred[r * s->P + down + j];
                if (c > best_c) { best_c = c; best = j; }
            }
            return down + best;
        }
        return down + (pid % spines) * cpp + (pid / spines) % cpp;
    }
    return dst;                          /* single router */
}

static int64_t recv_router(FastState *s, int64_t g, int64_t code,
                           int64_t vc, int64_t now) {
    if (++s->occ[g] > s->CAP) { s->err_a = g; return ERR_OVERFLOW; }
    int64_t row = g * s->V + vc;
    int64_t slot = s->qhead[row] + s->qlen[row];
    if (slot >= s->CAP) slot -= s->CAP;
    s->qbuf[row * s->CAP + slot] = code;
    if (s->qlen[row]++ == 0) {
        int8_t st = s->state[row];
        if (st == s->st_idle) {
            if (code & s->idx_mask) return ERR_IDLE_BODY;
            s->state[row] = (int8_t)s->st_route;
            sched_rc(s, row, s->rc_delay[g], now);
        } else if (st == s->st_active) {
            cand_set(s, s->gout[row], s->g_p[g] * s->V + vc);
        }
    }
    return 0;
}

static void recv_terminal(FastState *s, int64_t t, int64_t code,
                          int64_t now) {
    s->trecv[t]++;
    s->inflight--;
    s->delivered_total++;
    int64_t pidx = (code >> s->shift) - s->base;
    if ((code & s->idx_mask) == s->pk_size[pidx] - 1) {
        s->pk_arrive[pidx] = now;
        s->log_term[s->log_count] = t;
        s->log_pidx[s->log_count] = pidx;
        s->log_count++;
    }
}

static int64_t inject(FastState *s, int64_t now) {
    for (int64_t t = 0; t < s->T; t++) {
        if (s->tbacklog[t] <= 0) continue;
        if (s->tcred[t] <= 0) {
            if (s->tel) s->tel_term_stall[t]++;
            continue;
        }
        int64_t pidx = s->cur_pid[t];
        int64_t idx = s->cur_idx[t];
        if (idx == 0) {
            s->tvc[t] = s->tvc[t] + 1 >= s->V ? 0 : s->tvc[t] + 1;
            s->pk_inject[pidx] = now;
        }
        s->tcred[t]--;
        s->tsent[t]++;
        s->tbacklog[t]--;
        s->total_backlog--;
        int64_t code = ((s->base + pidx) << s->shift) | idx;
        int64_t rc = ring_push(s, s->inj_cls[t], now, s->inj_dest[t],
                               code, s->tvc[t], -1 - t);
        if (rc) return rc;
        s->cur_idx[t] = idx + 1;
        if (idx == s->pk_size[pidx] - 1) {
            s->tpsent[t]++;
            int64_t head = s->pend_head[t];
            if (head >= 0) {
                s->cur_pid[t] = head;
                s->cur_idx[t] = 0;
                s->pend_head[t] = s->pend_next[head];
                if (s->pend_head[t] < 0) s->pend_tail[t] = -1;
            } else {
                s->cur_pid[t] = -1;
            }
        }
    }
    return 0;
}

static int64_t vc_allocate(FastState *s, int64_t now) {
    /* Merge this cycle's RC completions with VA-stalled heads into a
       row bitmask and walk its set bits — ascending row order for
       free: the object engine's sorted(rc_pending) loop. */
    int64_t slot = now % s->W;
    int64_t nb = s->bk_cnt[slot];
    if (s->tel) {
        /* Rows popped this cycle leave the waiting population before
           the per-cycle wait attribution: a row scheduled with delay d
           at receive time accrues exactly d wait cycles (d-1 for the
           post-SA respawn, which is scheduled after this point of the
           cycle) — the scalar engine's `now < rc_ready` count. */
        for (int64_t i = 0; i < nb; i++)
            s->tel_rc_waiting[s->row_r[s->bk_rows[slot * s->RPV + i]]]--;
        s->tel_waiting_total -= nb;
        if (s->tel_waiting_total)
            for (int64_t r = 0; r < s->R; r++)
                s->tel_rc_wait[r] += s->tel_rc_waiting[r];
    }
    if (s->stall_cnt + nb == 0) return 0;
    for (int64_t i = 0; i < s->stall_cnt; i++) {
        int64_t row = s->stall_rows[i];
        s->va_mask[row >> 6] |= (uint64_t)1 << (row & 63);
    }
    for (int64_t i = 0; i < nb; i++) {
        int64_t row = s->bk_rows[slot * s->RPV + i];
        s->va_mask[row >> 6] |= (uint64_t)1 << (row & 63);
    }
    s->bk_cnt[slot] = 0;
    s->stall_cnt = 0;
    for (int64_t wd = 0; wd < s->RPVW; wd++) {
    uint64_t bits = s->va_mask[wd];
    s->va_mask[wd] = 0;
    while (bits) {
        int64_t row = wd * 64 + __builtin_ctzll(bits);
        bits &= bits - 1;
        int64_t r = s->row_r[row];
        if (s->rc_out[row] < 0) {
            int64_t code = s->qbuf[row * s->CAP + s->qhead[row]];
            int64_t pid = code >> s->shift;
            int64_t dst = s->pk_dst[pid - s->base];
            int64_t out = route_port(s, r, dst, pid);
            if (out < 0 || out >= s->P) {
                s->err_a = out;
                return ERR_BAD_ROUTE;
            }
            s->rc_out[row] = out;
        }
        int64_t g = r * s->P + s->rc_out[row];
        int64_t ovc;
        if (s->oterm[g]) {
            ovc = 0;                     /* ejection: no VC ownership */
        } else {
            int64_t free = ~s->ovc_mask[g] & s->full_mask;
            if (!free) {                 /* stall: retry next cycle */
                if (s->tel) s->tel_va_stalls[r]++;
                s->stall_rows[s->stall_cnt++] = row;
                continue;
            }
            int64_t c = s->vc_ptr[g];
            while (!((free >> c) & 1)) c = c + 1 >= s->V ? 0 : c + 1;
            s->vc_ptr[g] = c + 1 >= s->V ? 0 : c + 1;
            s->ovc_mask[g] |= (int64_t)1 << c;
            ovc = c;
        }
        s->rc_ovc[row] = ovc;
        s->state[row] = (int8_t)s->st_active;
        s->gout[row] = g;
        s->n_active++;
        if (s->tel) s->tel_va_grants[r]++;
        cand_set(s, g, row - r * s->PV);
    }
    }
    return 0;
}

static int64_t commit(FastState *s, int64_t r, int64_t g, int64_t pv,
                      int64_t now) {
    int64_t row = r * s->PV + pv;
    int64_t w = r * s->P + s->pv_port[pv];
    s->sa_ptr[g] = pv + 1 >= s->PV ? 0 : pv + 1;
    int64_t h = s->qhead[row];
    int64_t code = s->qbuf[row * s->CAP + h];
    s->qhead[row] = h + 1 >= s->CAP ? 0 : h + 1;
    s->qlen[row]--;
    s->occ[w]--;
    s->fwd_g[w]++;
    s->cg_stamp[w] = now;
    if (s->tel) {
        s->tel_channel_load[g]++;
        s->tel_vc_grants[r * s->V + (pv - s->pv_port[pv] * s->V)]++;
    }
    if (s->cred_cls[w] >= 0) {
        int64_t rc = ring_push(s, s->cred_cls[w], now, s->cred_dest[w],
                               0, 0, 0);
        if (rc) return rc;
    }
    int64_t out_vc = s->rc_ovc[row];
    int64_t is_term = s->oterm[g];
    if (!is_term) s->ocred[g]--;
    if (s->send_cls[g] < 0) { s->err_a = g; return ERR_UNWIRED; }
    int64_t rc = ring_push(s, s->send_cls[g], now, s->send_dest[g],
                           code, out_vc, g);
    if (rc) return rc;
    int64_t pidx = (code >> s->shift) - s->base;
    if ((code & s->idx_mask) == s->pk_size[pidx] - 1) {   /* tail */
        if (!is_term) s->ovc_mask[g] &= ~((int64_t)1 << out_vc);
        s->state[row] = (int8_t)s->st_idle;
        s->rc_out[row] = -1;
        s->rc_ovc[row] = -1;
        s->gout[row] = -1;
        s->n_active--;
        cand_clear(s, g, pv);
        if (s->qlen[row] > 0) {          /* next packet: re-route */
            s->state[row] = (int8_t)s->st_route;
            sched_rc(s, row, s->rc_delay_respawn[w], now);
        }
    } else if (s->qlen[row] == 0) {
        cand_clear(s, g, pv);            /* body flits still in flight */
    }
    return 0;
}

static int64_t switch_allocate(FastState *s, int64_t now) {
    /* Routers ascending, active out ports ascending, winner = minimum
       circular distance from the port's pointer among candidates whose
       input port has not already been granted this cycle. */
    for (int64_t r = 0; r < s->R; r++) {
        uint64_t m = s->aop[r];
        while (m) {
            int64_t p = __builtin_ctzll(m);
            m &= m - 1;
            int64_t g = r * s->P + p;
            if (!s->oterm[g] && s->ocred[g] <= 0) {
                if (s->tel) s->tel_credit_stall[g]++;
                continue;
            }
            int64_t best = -1, best_d = s->PV, req = 0;
            for (int64_t wd = 0; wd < s->PVW; wd++) {
                uint64_t bits = s->cand[g * s->PVW + wd];
                while (bits) {
                    int64_t pv = wd * 64 + __builtin_ctzll(bits);
                    bits &= bits - 1;
                    if (s->cg_stamp[r * s->P + s->pv_port[pv]] == now)
                        continue;
                    req++;
                    int64_t d = pv - s->sa_ptr[g];
                    if (d < 0) d += s->PV;
                    if (d < best_d) { best_d = d; best = pv; }
                }
            }
            if (s->tel) s->tel_sa_requests[g] += req;
            if (best < 0) continue;
            int64_t rc = commit(s, r, g, best, now);
            if (rc) return rc;
        }
    }
    return 0;
}

static int64_t do_step(FastState *s) {
    int64_t now = s->cycle;
    for (int64_t ci = 0; ci < s->n_cls; ci++) {  /* 1. flit arrivals */
        int64_t kind = s->cls_kind[ci];
        if (kind > 2) continue;
        while (s->cls_head[ci] < s->cls_tail[ci]) {
            int64_t i = s->cls_off[ci] + s->cls_hidx[ci];
            if (s->ring_cycle[i] != now) break;
            if (++s->cls_hidx[ci] == s->cls_cap[ci]) s->cls_hidx[ci] = 0;
            s->cls_head[ci]++;
            if (kind == 1) {
                recv_terminal(s, s->ring_dest[i], s->ring_code[i], now);
            } else {
                int64_t rc = recv_router(s, s->ring_dest[i],
                                         s->ring_code[i],
                                         s->ring_vc[i], now);
                if (rc) return rc;
            }
        }
    }
    for (int64_t ci = 0; ci < s->n_cls; ci++) {  /* 2. credits */
        int64_t kind = s->cls_kind[ci];
        if (kind <= 2) continue;
        while (s->cls_head[ci] < s->cls_tail[ci]) {
            int64_t i = s->cls_off[ci] + s->cls_hidx[ci];
            if (s->ring_cycle[i] != now) break;
            if (++s->cls_hidx[ci] == s->cls_cap[ci]) s->cls_hidx[ci] = 0;
            s->cls_head[ci]++;
            if (kind == 3) s->ocred[s->ring_dest[i]]++;
            else s->tcred[s->ring_dest[i]]++;
        }
    }
    if (s->total_backlog) {
        int64_t rc = inject(s, now);
        if (rc) return rc;
    }
    int64_t rc = vc_allocate(s, now);            /* 3. VA then SA */
    if (rc) return rc;
    if (s->n_active) {
        rc = switch_allocate(s, now);
        if (rc) return rc;
    }
    if (s->tel && now % s->tel_interval == 0) {  /* occupancy sample */
        for (int64_t g = 0; g < s->RP; g++) {
            int64_t o = s->occ[g];
            s->tel_occ_sum[g] += o;
            if (o > s->tel_occ_peak[g]) s->tel_occ_peak[g] = o;
        }
        for (int64_t row = 0; row < s->RPV; row++) {
            int64_t l = s->qlen[row];
            if (l)
                s->tel_vc_occ_sum[s->row_r[row] * s->V + row % s->V] += l;
        }
        s->tel_samples++;
        int64_t b = s->total_backlog;
        s->tel_backlog_sum += b;
        if (b > s->tel_backlog_peak) s->tel_backlog_peak = b;
        s->tel_backlog_samples++;
    }
    s->cycle = now + 1;
    return 0;
}

static void offers(FastState *s, int64_t now) {
    while (s->ev_index < s->n_ev && s->ev_when[s->ev_index] <= now) {
        int64_t e = s->ev_index++;
        int64_t t = s->ev_term[e];
        if (s->tbacklog[t] == 0) {
            s->cur_pid[t] = e;
            s->cur_idx[t] = 0;
        } else if (s->pend_tail[t] >= 0) {
            s->pend_next[s->pend_tail[t]] = e;
            s->pend_tail[t] = e;
        } else {
            s->pend_head[t] = e;
            s->pend_tail[t] = e;
        }
        int64_t size = s->pk_size[e];
        s->tbacklog[t] += size;
        s->total_backlog += size;
        s->inflight += size;
    }
}

/* ---- CPython-compatible Mersenne Twister -------------------------
   Bernoulli pre-generation consumes the bulk of the Python driver's
   time at scale. random.Random is MT19937 with a documented state
   (`getstate`), so the draw loop can run here bit-for-bit: random()
   is genrand_res53 and randrange(m) is CPython's
   _randbelow_with_getrandbits rejection loop. The advanced state is
   written back and restored into the Python RNG afterwards. */

#define MT_N 624
#define MT_M 397

static uint32_t mt_next(uint32_t *mt, int64_t *mti) {
    uint32_t y;
    if (*mti >= MT_N) {
        static const uint32_t mag[2] = {0u, 0x9908b0dfu};
        int kk;
        for (kk = 0; kk < MT_N - MT_M; kk++) {
            y = (mt[kk] & 0x80000000u) | (mt[kk + 1] & 0x7fffffffu);
            mt[kk] = mt[kk + MT_M] ^ (y >> 1) ^ mag[y & 1u];
        }
        for (; kk < MT_N - 1; kk++) {
            y = (mt[kk] & 0x80000000u) | (mt[kk + 1] & 0x7fffffffu);
            mt[kk] = mt[kk + (MT_M - MT_N)] ^ (y >> 1) ^ mag[y & 1u];
        }
        y = (mt[MT_N - 1] & 0x80000000u) | (mt[0] & 0x7fffffffu);
        mt[MT_N - 1] = mt[MT_M - 1] ^ (y >> 1) ^ mag[y & 1u];
        *mti = 0;
    }
    y = mt[(*mti)++];
    y ^= y >> 11;
    y ^= (y << 7) & 0x9d2c5680u;
    y ^= (y << 15) & 0xefc60000u;
    y ^= y >> 18;
    return y;
}

int64_t pregen_uniform(uint32_t *mt, int64_t *mti_io, int64_t total,
                       int64_t T, double probability,
                       int64_t n_terminals, int64_t *ev_when,
                       int64_t *ev_term, int64_t *ev_dst) {
    int64_t mti = *mti_io;
    int64_t m = n_terminals - 1;
    int bits = 0;                        /* m.bit_length() */
    for (int64_t v = m; v; v >>= 1) bits++;
    int64_t count = 0;
    for (int64_t c = 0; c < total; c++) {
        for (int64_t src = 0; src < T; src++) {
            uint32_t a = mt_next(mt, &mti) >> 5;
            uint32_t b = mt_next(mt, &mti) >> 6;
            double r = (a * 67108864.0 + b) * (1.0 / 9007199254740992.0);
            if (r >= probability) continue;
            int64_t d;
            do {
                d = mt_next(mt, &mti) >> (32 - bits);
            } while (d >= m);
            if (d >= src) d += 1;   /* skip self-traffic */
            ev_when[count] = c;
            ev_term[count] = src;
            ev_dst[count] = d;
            count++;
        }
    }
    *mti_io = mti;
    return count;
}

int64_t fast_run(FastState *s, int64_t mode, int64_t limit) {
    /* mode 0: offer + step for `limit` cycles.
       mode 1: drain — step until in-flight empties (returns 1) or
       `limit` cycles elapse (returns 0). */
    if (mode == 0) {
        for (int64_t k = 0; k < limit; k++) {
            offers(s, s->cycle);
            int64_t rc = do_step(s);
            if (rc) return rc;
        }
        return 0;
    }
    for (int64_t k = 0; k < limit; k++) {
        if (s->inflight == 0) return 1;
        int64_t rc = do_step(s);
        if (rc) return rc;
    }
    return 0;
}
"""
)

#: Exact error messages, shared with the scalar and numpy engines.
ERROR_MESSAGES = {
    -2: "body flit reached an idle VC front",
}

_kernel = None
_kernel_tried = False


def _cache_dir() -> Path:
    return Path(__file__).resolve().parent / "_cc_cache"


#: Optimization flags; folded into the cache key alongside the source.
_CFLAGS = ["-O3", "-fomit-frame-pointer"]


def _build(ffi) -> Optional[object]:
    key = _C_SOURCE + "\x00" + " ".join(_CFLAGS)
    digest = hashlib.sha256(key.encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = cache / f"faststep_{digest}.so"
    if not so_path.exists():
        cache.mkdir(parents=True, exist_ok=True)
        cc = os.environ.get("CC", "cc")
        with tempfile.TemporaryDirectory(dir=str(cache)) as tmp:
            c_path = Path(tmp) / "faststep.c"
            c_path.write_text(_C_SOURCE)
            tmp_so = Path(tmp) / so_path.name
            subprocess.run(
                [cc, *_CFLAGS, "-std=c99", "-fPIC", "-shared",
                 str(c_path), "-o", str(tmp_so)],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp_so, so_path)  # atomic publish
    return ffi.dlopen(str(so_path))


def load_kernel():
    """``(ffi, lib)`` for the compiled step kernel, or ``None``.

    ``None`` means "no C toolchain here" (or ``REPRO_NETSIM_NO_CC=1``):
    callers fall back to the pure-numpy step loop. The result is cached
    for the process; a failed build is not retried.
    """
    global _kernel, _kernel_tried
    if os.environ.get(NO_CC_ENV, "") == "1":
        return None
    if _kernel_tried:
        return _kernel
    _kernel_tried = True
    try:
        import cffi

        ffi = cffi.FFI()
        ffi.cdef(_CDEF)
        lib = _build(ffi)
        if lib is not None:
            _kernel = (ffi, lib)
    except Exception:
        _kernel = None
    return _kernel
