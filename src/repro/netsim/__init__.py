"""Cycle-accurate network simulator (a from-scratch Booksim2 equivalent).

Implements the simulation infrastructure behind the paper's Section VI
performance study: input-queued routers with the four-stage pipeline of
Fig 20 (route computation, VC allocation, switch allocation, switch
traversal), virtual channels with credit-based flow control, shared
input buffering, configurable per-stage delays, synthetic traffic
patterns, and trace replay.

One simulation cycle corresponds to 20 ns, matching the paper's
convention (so an SSC delay of 11 cycles is 220 ns, and the 200 ns
"equivalent delay" of Fig 21 is 10 cycles).
"""

from repro.netsim.config import CYCLE_TIME_NS, RouterConfig, SimConfig
from repro.netsim.network import (
    NetworkModel,
    baseline_switch_network,
    single_router_network,
    waferscale_clos_network,
)
from repro.netsim.packet import Flit, Packet
from repro.netsim.sim import (
    LoadLatencyPoint,
    Simulator,
    load_latency_sweep,
    run_sim,
    saturation_throughput,
)
from repro.netsim.stats import RunStats
from repro.netsim.telemetry import Telemetry, validate_telemetry
from repro.netsim.traffic import TRAFFIC_PATTERNS, TrafficPattern, make_pattern
from repro.netsim.trace import (
    SyntheticTraceSpec,
    TraceEvent,
    duplicate_trace,
    replay_trace,
    synthetic_nersc_trace,
)

__all__ = [
    "CYCLE_TIME_NS",
    "Flit",
    "LoadLatencyPoint",
    "NetworkModel",
    "Packet",
    "RouterConfig",
    "RunStats",
    "SimConfig",
    "Simulator",
    "SyntheticTraceSpec",
    "TRAFFIC_PATTERNS",
    "Telemetry",
    "TraceEvent",
    "TrafficPattern",
    "baseline_switch_network",
    "duplicate_trace",
    "load_latency_sweep",
    "make_pattern",
    "replay_trace",
    "run_sim",
    "saturation_throughput",
    "single_router_network",
    "synthetic_nersc_trace",
    "validate_telemetry",
    "waferscale_clos_network",
]
