"""Simulation drivers: warmup / measurement, load sweeps, saturation.

Follows Booksim's methodology: run a warmup phase, then measure the
average packet latency over packets *created* during the measurement
window, then (optionally) drain. A configuration is saturated when its
average latency exceeds a multiple of the zero-load latency or its
accepted throughput stops tracking the offered load; saturation
throughput is the accepted load at an offered load beyond saturation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from repro.engines import resolve_netsim_engine
from repro.netsim import fast_core
from repro.netsim.config import SimConfig
from repro.netsim.network import NetworkModel
from repro.netsim.packet import Packet
from repro.netsim.stats import RunStats
from repro.netsim.telemetry import Telemetry
from repro.netsim.traffic import BernoulliInjector, TrafficPattern, make_pattern

NetworkFactory = Callable[[], NetworkModel]

#: Latency cap (x zero-load latency) past which a run counts as saturated.
SATURATION_LATENCY_FACTOR = 4.0

#: Accepted load must reach this fraction of the offered load for a
#: point to count as below saturation (Bernoulli noise stays well
#: inside this margin at the sweep's measurement depths).
ACCEPTED_TRACKING_FACTOR = 0.75


class Simulator:
    """Drives one network instance under Bernoulli traffic."""

    def __init__(
        self,
        network: NetworkModel,
        pattern: TrafficPattern,
        load: float,
        packet_size_flits: int = 4,
        seed: int = 1,
    ):
        if pattern.n_terminals != network.n_terminals:
            raise ValueError(
                "traffic pattern terminal count does not match the network"
            )
        self.network = network
        self.injector = BernoulliInjector(
            pattern, load, packet_size_flits, seed=seed
        )
        self.load = load
        self.packet_size_flits = packet_size_flits

    def _generate(self, now: int, count_stats: Optional[RunStats]) -> None:
        # Inlined BernoulliInjector.generate: one rng.random() per
        # terminal per cycle dominates the generation cost, so hoist
        # every attribute lookup out of the loop. The RNG consumption
        # order is identical to calling generate() per terminal.
        injector = self.injector
        rng = injector.rng
        draw = rng.random
        probability = injector.packet_probability
        destination = injector.pattern.destination
        size = injector.packet_size_flits
        offered = 0
        created = 0
        for terminal in self.network.terminals:
            if draw() >= probability:
                continue
            src = terminal.terminal_id
            terminal.offer_packet(Packet(src, destination(src, rng), size, now))
            offered += size
            created += 1
        if count_stats is not None:
            count_stats.flits_offered += offered
            count_stats.packets_created += created

    def run(
        self,
        warmup_cycles: int = 1000,
        measure_cycles: int = 2000,
        drain_cycles: int = 3000,
        telemetry: Optional[Telemetry] = None,
        engine: str = "auto",
    ) -> RunStats:
        """Warm up, measure, and drain; return the window's statistics.

        The three phases follow Booksim's methodology (see
        :class:`~repro.netsim.config.SimConfig` for the windowing
        contract). When a :class:`~repro.netsim.telemetry.Telemetry`
        sink is given it is attached to the network and driven through
        matching ``warmup`` / ``measurement`` / ``drain`` windows, so
        its per-window counters line up with the returned
        :class:`~repro.netsim.stats.RunStats`.
        """
        network = self.network
        # Engine selection happens once per run, resolved ahead of the
        # env-var escape hatches (repro.engines): the vectorized
        # struct-of-arrays core when requested and supported, the
        # object simulator otherwise. All engines produce bit-identical
        # results (tests/netsim/test_differential.py).
        engine_name = resolve_netsim_engine(engine)
        engine = fast_core.engine_for(network, telemetry, engine=engine_name)
        if engine is not None:
            return engine.run_bernoulli(
                self.injector, warmup_cycles, measure_cycles, drain_cycles
            )
        if telemetry is not None:
            telemetry.attach(network)
            telemetry.begin_window("warmup", network.cycle)
        for _ in range(warmup_cycles):
            self._generate(network.cycle, None)
            network.step()

        measure_start = network.cycle
        measure_end = measure_start + measure_cycles
        stats = RunStats(
            measure_start=measure_start,
            measure_end=measure_end,
            n_terminals=network.n_terminals,
        )
        if telemetry is not None:
            telemetry.begin_window("measurement", network.cycle)
        delivered_before = self._delivered_flits()
        for _ in range(measure_cycles):
            self._generate(network.cycle, stats)
            network.step()
        stats.flits_delivered = self._delivered_flits() - delivered_before

        # Drain: stop offering, keep stepping so measurement-window
        # packets can finish (bounded by drain_cycles).
        if telemetry is not None:
            telemetry.begin_window("drain", network.cycle)
        for _ in range(drain_cycles):
            if network.in_flight_flits() == 0:
                break
            network.step()
        if telemetry is not None:
            telemetry.finish(network.cycle)

        for terminal in network.terminals:
            for packet in terminal.packets_received:
                stats.record_arrival(packet)
        return stats

    def _delivered_flits(self) -> int:
        return sum(t.flits_received for t in self.network.terminals)


def run_sim(
    network: NetworkModel,
    pattern: Union[str, TrafficPattern],
    load: float,
    config: Optional[SimConfig] = None,
    telemetry: Optional[Telemetry] = None,
    engine: str = "auto",
) -> RunStats:
    """Run one warmup/measure/drain simulation on a built network.

    The one-call front door to the simulator: pass a network from
    :mod:`repro.netsim.network` (or :func:`~repro.netsim.mesh_network.
    mesh_network`), a traffic pattern — by name (see
    ``TRAFFIC_PATTERNS``) or as a :class:`~repro.netsim.traffic.
    TrafficPattern` — an offered load in flits/cycle/terminal, and
    optionally a :class:`~repro.netsim.config.SimConfig` for the
    window/seed parameters and a :class:`~repro.netsim.telemetry.
    Telemetry` sink for per-router instrumentation. ``engine`` picks
    the simulation kernel explicitly (``"auto"``, ``"c"``, ``"numpy"``
    or ``"scalar"`` — see :mod:`repro.engines`); the env switches
    remain as CI overrides.

    >>> from repro.netsim.config import SimConfig
    >>> from repro.netsim.network import single_router_network
    >>> stats = run_sim(
    ...     single_router_network(4), "uniform", load=0.2,
    ...     config=SimConfig(warmup_cycles=50, measure_cycles=200,
    ...                      drain_cycles=100, seed=7),
    ... )
    >>> stats.packets_delivered == stats.packets_created  # nothing censored
    True
    >>> stats.avg_latency_cycles < 20  # one router, near zero-load
    True
    """
    if config is None:
        config = SimConfig()
    if isinstance(pattern, str):
        pattern = make_pattern(pattern, network.n_terminals)
    sim = Simulator(
        network,
        pattern,
        load,
        packet_size_flits=config.packet_size_flits,
        seed=config.seed,
    )
    return sim.run(
        warmup_cycles=config.warmup_cycles,
        measure_cycles=config.measure_cycles,
        drain_cycles=config.drain_cycles,
        telemetry=telemetry,
        engine=resolve_netsim_engine(engine),
    )


@dataclass(frozen=True)
class LoadLatencyPoint:
    """One point of a load-latency curve."""

    offered_load: float
    accepted_load: float
    avg_latency_cycles: float
    avg_latency_ns: float
    saturated: bool


def load_latency_sweep(
    network_factory: NetworkFactory,
    pattern_factory: Callable[[int], TrafficPattern],
    loads: Sequence[float],
    packet_size_flits: int = 4,
    warmup_cycles: int = 500,
    measure_cycles: int = 1500,
    seed: int = 1,
    telemetry_factory: Optional[Callable[[float], Optional[Telemetry]]] = None,
    engine: str = "auto",
) -> List[LoadLatencyPoint]:
    """Average latency vs offered load (Figs 22, 23, 24 style curves).

    A fresh network is built per load point. Zero-load latency is taken
    from the first load point that is *not already saturated* — the
    point must deliver packets and its accepted load must track the
    offered load. Anchoring on a saturated first point (e.g. a sweep
    that starts past the knee) would inflate the latency criterion and
    mask saturation at every later point.

    ``telemetry_factory(load)`` may return a fresh
    :class:`~repro.netsim.telemetry.Telemetry` sink per load point
    (or ``None`` to skip a point); the caller keeps the references —
    typically a closure that writes each report to disk.
    """
    points: List[LoadLatencyPoint] = []
    zero_load_latency: Optional[float] = None
    engine = resolve_netsim_engine(engine)
    for load in loads:
        network = network_factory()
        pattern = pattern_factory(network.n_terminals)
        sim = Simulator(network, pattern, load, packet_size_flits, seed=seed)
        telemetry = (
            telemetry_factory(load) if telemetry_factory is not None else None
        )
        stats = sim.run(
            warmup_cycles=warmup_cycles,
            measure_cycles=measure_cycles,
            telemetry=telemetry,
            engine=engine,
        )
        latency = stats.avg_latency_cycles
        tracks_offered = stats.packets_delivered > 0 and (
            load <= 0
            or stats.accepted_load >= ACCEPTED_TRACKING_FACTOR * load
        )
        if zero_load_latency is None and latency == latency and tracks_offered:
            zero_load_latency = latency
        saturated = not tracks_offered or bool(
            zero_load_latency is not None
            and latency == latency
            and latency > SATURATION_LATENCY_FACTOR * zero_load_latency
        )
        points.append(
            LoadLatencyPoint(
                offered_load=load,
                accepted_load=stats.accepted_load,
                avg_latency_cycles=latency,
                avg_latency_ns=stats.avg_latency_ns,
                saturated=saturated,
            )
        )
    return points


def saturation_throughput(
    network_factory: NetworkFactory,
    pattern_factory: Callable[[int], TrafficPattern],
    packet_size_flits: int = 4,
    offered_load: float = 1.0,
    warmup_cycles: int = 500,
    measure_cycles: int = 1500,
    seed: int = 1,
    telemetry: Optional[Telemetry] = None,
    engine: str = "auto",
) -> float:
    """Accepted throughput at an offered load far past saturation.

    Offering the full line rate and measuring the accepted flit rate is
    Booksim's standard estimate of saturation throughput. An optional
    ``telemetry`` sink captures the saturated network's stall
    attribution (there is no drain window: drain is skipped here).
    """
    network = network_factory()
    pattern = pattern_factory(network.n_terminals)
    sim = Simulator(network, pattern, offered_load, packet_size_flits, seed=seed)
    stats = sim.run(
        warmup_cycles=warmup_cycles,
        measure_cycles=measure_cycles,
        drain_cycles=0,
        telemetry=telemetry,
        engine=resolve_netsim_engine(engine),
    )
    return stats.accepted_load
