"""Direct 2-D mesh network of SSC routers (Section VII's mesh switch).

The mesh maps natively onto the wafer (every logical link is a physical
neighbor link), but as a switch fabric it is blocking with poor
bisection bandwidth — this builder lets the simulator quantify that
against the Clos-based waferscale switch.

Routing is dimension-ordered (XY), which is deadlock-free on a mesh
with wormhole flow control. Terminals are distributed evenly across
routers; each router dedicates ``k - 4*w`` ports to local terminals
and ``w`` channels per neighbor direction, mirroring
:func:`repro.topology.mesh.direct_mesh`.
"""

from __future__ import annotations

from typing import Tuple

from repro.netsim.config import RouterConfig
from repro.netsim.network import NetworkModel, _wire, _wire_terminal
from repro.netsim.packet import Flit
from repro.netsim.router import Router
from repro.netsim.terminal import Terminal


def _port_layout(terminals_per_router: int, neighbor_channels: int):
    """Port numbering: locals first, then N/E/S/W channel groups."""
    base = terminals_per_router

    def neighbor_ports(direction: int) -> Tuple[int, int]:
        start = base + direction * neighbor_channels
        return start, start + neighbor_channels

    return neighbor_ports


def mesh_network(
    rows: int,
    cols: int,
    terminals_per_router: int,
    neighbor_channels: int = 2,
    config: RouterConfig = None,
    link_latency: int = 1,
    io_latency: int = 8,
) -> NetworkModel:
    """Build a rows x cols mesh of SSC routers with XY routing."""
    if rows < 2 or cols < 2:
        raise ValueError("mesh needs rows, cols >= 2")
    if terminals_per_router < 1 or neighbor_channels < 1:
        raise ValueError("need >= 1 terminal and >= 1 neighbor channel")
    if config is None:
        config = RouterConfig(num_vcs=4, buffer_flits_per_port=16)

    n_ports = terminals_per_router + 4 * neighbor_channels
    neighbor_ports = _port_layout(terminals_per_router, neighbor_channels)
    # Directions: 0=N, 1=E, 2=S, 3=W.
    NORTH, EAST, SOUTH, WEST = range(4)

    def router_index(r: int, c: int) -> int:
        return r * cols + c

    # XY routing is deterministic per (router, destination) up to the
    # packet-id channel spread: cache the decision per router as
    # ``dst -> local port`` (>= 0) or ``dst -> -(direction start) - 1``
    # for remote hops, filled lazily so large meshes pay only for the
    # destinations they actually see.
    route_tables: Tuple[dict, ...] = tuple({} for _ in range(rows * cols))

    def route(router: Router, in_port: int, flit: Flit) -> int:
        dst = flit.dst
        table = route_tables[router.router_id]
        entry = table.get(dst)
        if entry is None:
            dst_router, dst_local = divmod(dst, terminals_per_router)
            my_r, my_c = divmod(router.router_id, cols)
            dst_r, dst_c = divmod(dst_router, cols)
            if (my_r, my_c) == (dst_r, dst_c):
                entry = dst_local
            else:
                if my_c != dst_c:  # X first
                    direction = EAST if dst_c > my_c else WEST
                else:
                    direction = SOUTH if dst_r > my_r else NORTH
                entry = -neighbor_ports(direction)[0] - 1
            table[dst] = entry
        if entry >= 0:
            return entry
        return -entry - 1 + flit.packet.packet_id % neighbor_channels

    routers = [
        Router(router_index(r, c), n_ports, config, route)
        for r in range(rows)
        for c in range(cols)
    ]
    n_terminals = rows * cols * terminals_per_router
    terminals = [Terminal(t, config.num_vcs) for t in range(n_terminals)]
    network = NetworkModel(
        name=f"mesh-{rows}x{cols}",
        routers=routers,
        terminals=terminals,
        route_spec=(
            "mesh",
            {
                "cols": cols,
                "terminals_per_router": terminals_per_router,
                "neighbor_channels": neighbor_channels,
            },
        ),
    )

    for r in range(rows):
        for c in range(cols):
            router = routers[router_index(r, c)]
            for local in range(terminals_per_router):
                terminal = terminals[
                    router_index(r, c) * terminals_per_router + local
                ]
                _wire_terminal(network, terminal, router, local, io_latency)
            # Wire east and south once per pair (both directions).
            if c + 1 < cols:
                east = routers[router_index(r, c + 1)]
                for channel in range(neighbor_channels):
                    my_port = neighbor_ports(EAST)[0] + channel
                    their_port = neighbor_ports(WEST)[0] + channel
                    _wire(network, router, my_port, east, their_port, link_latency)
                    _wire(network, east, their_port, router, my_port, link_latency)
            if r + 1 < rows:
                south = routers[router_index(r + 1, c)]
                for channel in range(neighbor_channels):
                    my_port = neighbor_ports(SOUTH)[0] + channel
                    their_port = neighbor_ports(NORTH)[0] + channel
                    _wire(network, router, my_port, south, their_port, link_latency)
                    _wire(network, south, their_port, router, my_port, link_latency)
    return network
