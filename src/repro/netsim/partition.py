"""Incremental partition driver: step one wafer's network epoch by epoch.

The batch engines in :mod:`repro.netsim.fast_core` run a whole
simulation in one call (pregenerated Bernoulli stream or replay
schedule, then ``_finish``).  Partitioned multi-wafer simulation
(:mod:`repro.dcn`) needs something they don't offer: a *live* engine
that accepts externally scheduled injections as they become known and
advances to a target cycle, keeping all state resident between calls —
because the next epoch's injections depend on what every other wafer
delivered during this one.

:class:`WaferPartition` wraps one pristine network in exactly that
driver, on either engine:

* the vectorized :class:`~repro.netsim.fast_core.FastEngine` (numpy
  step loop) when the network compiles, or
* the scalar object simulator otherwise (``REPRO_SCALAR_NETSIM=1``
  keeps the usual oracle escape hatch).

Packet ids are **partition-local** and assigned here, in deterministic
offer order (events are consumed sorted by ``(cycle, source terminal,
tag)``), *not* drawn from the global counter in
:mod:`repro.netsim.packet`.  That is what makes a partitioned run
bit-identical to a monolithic one: Clos routing hashes the packet id
across spines/channels, so the id sequence each wafer sees must depend
only on that wafer's injection history, never on how many other
partitions share the process.

Both engines produce identical deliveries for identical event streams
(the differential harness pins them to each other); ``advance`` sorts
its delivery report by ``(arrival cycle, terminal, tag)`` so the two
engines return byte-identical bundles.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, List, Tuple

import numpy as np

from repro.engines import resolve_netsim_engine
from repro.netsim import fast_core
from repro.netsim.network import NetworkModel
from repro.netsim.packet import Packet

#: One externally scheduled injection:
#: ``(cycle, src_terminal, dst_terminal, size_flits, tag)``.  ``tag``
#: is an opaque caller id (the DCN layer uses its global packet id) and
#: is echoed back in the delivery report.
Event = Tuple[int, int, int, int, int]


class WaferPartition:
    """One wafer's network, steppable in externally bounded epochs."""

    def __init__(self, network: NetworkModel, engine: str = "auto"):
        resolved = resolve_netsim_engine(engine)
        self.engine = fast_core.engine_for(network, None, engine=resolved)
        self.network = network
        self.engine_name = "scalar" if self.engine is None else resolved
        self._sched: deque = deque()
        self._tags: List[int] = []
        self._next_gid = 0
        self.offered_flits = 0
        self.offered_packets = 0
        if self.engine is None:
            self._recv_cursor = [0] * network.n_terminals

    # -- caller surface -------------------------------------------------

    @property
    def cycle(self) -> int:
        return self.network.cycle if self.engine is None else self.engine.cycle

    @property
    def inflight_flits(self) -> int:
        if self.engine is None:
            return self.network.in_flight_flits()
        return int(self.engine.inflight)

    def enqueue(self, events: List[Event]) -> None:
        """Schedule injections; sorted, at-or-after the current cycle.

        Events must arrive sorted (plain tuple order) and never in the
        partition's past — the epoch barrier guarantees both, and the
        determinism of the local packet-id sequence depends on it.
        """
        if not events:
            return
        if events[0][0] < self.cycle:
            raise ValueError(
                f"event {events[0]} scheduled before cycle {self.cycle}"
            )
        for earlier, later in zip(events, events[1:]):
            if later < earlier:
                raise ValueError(f"events not sorted at {later}")
        if self._sched and events[0] < self._sched[-1]:
            raise ValueError("events overlap previously enqueued schedule")
        self._sched.extend(events)

    def advance(self, to_cycle: int):
        """Run to ``to_cycle``; return the epoch's delivery bundle.

        Returns ``(terms, tags, arrives, counters)``: three int64
        arrays — delivery terminal, caller tag, arrival cycle — sorted
        by ``(arrival, terminal, tag)``, plus a counters dict
        (``inflight``, ``delivered_flits``, ``delivered_packets``,
        ``offered_flits``, ``offered_packets``).  Every event scheduled
        strictly before ``to_cycle`` is consumed.
        """
        if self.engine is None:
            self._advance_scalar(to_cycle)
            terms, tags, arrives = self._harvest_scalar()
        else:
            self._advance_fast(to_cycle)
            terms, tags, arrives = self._harvest_fast()
        if terms.size > 1:
            order = np.lexsort((tags, terms, arrives))
            terms, tags, arrives = terms[order], tags[order], arrives[order]
        return terms, tags, arrives, self.counters()

    def counters(self) -> Dict[str, int]:
        if self.engine is None:
            delivered_flits = sum(
                t.flits_received for t in self.network.terminals
            )
            delivered_packets = sum(
                self._recv_cursor[t.terminal_id]
                for t in self.network.terminals
            )
        else:
            delivered_flits = int(self.engine.delivered_total)
            delivered_packets = self._delivered_packets_fast
        return {
            "inflight": self.inflight_flits,
            "offered_flits": self.offered_flits,
            "offered_packets": self.offered_packets,
            "delivered_flits": delivered_flits,
            "delivered_packets": delivered_packets,
        }

    # -- fast (vectorized) path ----------------------------------------

    _delivered_packets_fast = 0

    def _grow_fast(self, need: int) -> None:
        engine = self.engine
        capacity = engine.pk_dst.size
        if need <= capacity:
            return
        new_cap = max(256, capacity * 2, need)
        for name, fill in (
            ("pk_src", 0), ("pk_dst", 0), ("pk_size", 0),
            ("pk_create", 0), ("pk_inject", -1), ("pk_arrive", -1),
        ):
            old = getattr(engine, name)
            grown = np.full(new_cap, fill, dtype=np.int64)
            grown[:old.size] = old
            setattr(engine, name, grown)

    def _offer_fast(self, event: Event) -> int:
        cycle, src, dst, size, tag = event
        engine = self.engine
        gid = self._next_gid
        self._next_gid += 1
        self._grow_fast(self._next_gid)
        engine.pk_src[gid] = src
        engine.pk_dst[gid] = dst
        engine.pk_size[gid] = size
        engine.pk_create[gid] = cycle
        engine.pk_inject[gid] = -1
        engine.pk_arrive[gid] = -1
        self._tags.append(tag)
        self.offered_flits += size
        self.offered_packets += 1
        engine._offer(src, gid, size)
        return gid

    def _fast_idle(self) -> bool:
        engine = self.engine
        return (
            engine.inflight == 0
            and engine._n_active == 0
            and not engine._rc_buckets
            and engine._va_stalled is None
            and all(not q for q in engine._cls_q)
        )

    def _advance_fast(self, to_cycle: int) -> None:
        engine = self.engine
        sched = self._sched
        step = engine._step
        while engine.cycle < to_cycle:
            now = engine.cycle
            while sched and sched[0][0] <= now:
                self._offer_fast(sched.popleft())
            if not engine.inflight and self._fast_idle():
                # Nothing in flight anywhere: cycles until the next
                # scheduled event (or the epoch end) are pure no-ops.
                engine.cycle = (
                    min(sched[0][0], to_cycle) if sched else to_cycle
                )
                if engine.cycle >= to_cycle:
                    return
                continue
            step()

    def _harvest_fast(self):
        engine = self.engine
        log = engine._deliv_log
        if not log:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, empty
        terms = np.concatenate([t for t, _ in log])
        gids = np.concatenate([p for _, p in log])
        arrives = engine.pk_arrive[gids]
        tags = np.asarray(self._tags, dtype=np.int64)[gids]
        self._delivered_packets_fast += int(gids.size)
        # The log only feeds this harvest; drop consumed entries so an
        # arbitrarily long run holds O(in-flight) state, not O(total).
        log.clear()
        return terms, tags, arrives

    # -- scalar (object oracle) path -----------------------------------

    def _offer_scalar(self, event: Event) -> None:
        cycle, src, dst, size, tag = event
        gid = self._next_gid
        self._next_gid += 1
        packet = object.__new__(Packet)
        packet.packet_id = gid
        packet.src = src
        packet.dst = dst
        packet.size_flits = size
        packet.create_cycle = cycle
        packet.inject_cycle = -1
        packet.arrive_cycle = -1
        self._tags.append(tag)
        self.offered_flits += size
        self.offered_packets += 1
        self.network.terminals[src].offer_packet(packet)

    def _scalar_idle(self) -> bool:
        network = self.network
        return (
            not network._link_events
            and not network._credit_events
            and network.in_flight_flits() == 0
            and not any(
                r.rc_pending or r.active_out_ports for r in network.routers
            )
        )

    def _advance_scalar(self, to_cycle: int) -> None:
        network = self.network
        sched = self._sched
        step = network.step
        while network.cycle < to_cycle:
            now = network.cycle
            while sched and sched[0][0] <= now:
                self._offer_scalar(sched.popleft())
            if self._scalar_idle():
                network.cycle = (
                    min(sched[0][0], to_cycle) if sched else to_cycle
                )
                if network.cycle >= to_cycle:
                    return
                continue
            step()

    def _harvest_scalar(self):
        terms: List[int] = []
        tags: List[int] = []
        arrives: List[int] = []
        cursor = self._recv_cursor
        for terminal in self.network.terminals:
            received = terminal.packets_received
            start = cursor[terminal.terminal_id]
            if start >= len(received):
                continue
            for packet in received[start:]:
                terms.append(terminal.terminal_id)
                tags.append(self._tags[packet.packet_id])
                arrives.append(packet.arrive_cycle)
            cursor[terminal.terminal_id] = len(received)
        return (
            np.asarray(terms, dtype=np.int64),
            np.asarray(tags, dtype=np.int64),
            np.asarray(arrives, dtype=np.int64),
        )


# ----------------------------------------------------------------------
# Calibration probes (flow-level fidelity, see repro/dcn/flow.py)
# ----------------------------------------------------------------------

def calibration_probe(
    network: NetworkModel,
    load: float,
    inject_cycles: int,
    seed: int = 0,
    size_flits: int = 4,
    engine: str = "auto",
    drain_bound: int = 50_000,
) -> Dict[str, float]:
    """Short cycle-accurate run measuring one wafer's service behaviour.

    Drives ``network`` through a :class:`WaferPartition` with uniform
    Bernoulli injections at ``load`` (flits per terminal per cycle,
    spread over ``size_flits``-flit packets) for ``inject_cycles``,
    then drains.  Returns the measurements the flow-level fidelity
    mode fits its service curve from:

    ``mean_latency``
        mean create-to-delivery latency over all delivered packets;
    ``delivered_flits_per_cycle``
        delivered throughput over the *second half* of the injection
        window — past warm-up, before the drain tail, so at saturating
        loads this approaches the wafer's service capacity;
    ``offered_load`` / ``delivered`` / ``offered`` / ``drain_cycle``
        bookkeeping (flit counts and the cycle the run went idle).

    Deterministic in ``(network shape, load, inject_cycles, seed,
    size_flits)`` — probes are cacheable by construction.
    """
    if not 0.0 < load <= 1.0:
        raise ValueError(f"probe load must be in (0, 1] (got {load})")
    partition = WaferPartition(network, engine=engine)
    n = network.n_terminals
    rng = random.Random(seed)
    packet_prob = load / size_flits
    events: List[Event] = []
    for cycle in range(inject_cycles):
        for src in range(n):
            if rng.random() < packet_prob:
                dst = rng.randrange(n - 1)
                if dst >= src:
                    dst += 1
                events.append((cycle, src, dst, size_flits, len(events)))
    events.sort()
    partition.enqueue(events)

    half = max(1, inject_cycles // 2)
    arrives: List[np.ndarray] = []
    creates = {tag: event[0] for tag, event in enumerate(events)}
    terms, tags, arr, counters = partition.advance(half)
    arrives.append(arr)
    tag_log = [tags]
    delivered_at_half = counters["delivered_flits"]
    terms, tags, arr, counters = partition.advance(inject_cycles)
    arrives.append(arr)
    tag_log.append(tags)
    window_flits = counters["delivered_flits"] - delivered_at_half
    window_cycles = inject_cycles - half

    while counters["inflight"] and partition.cycle < drain_bound:
        terms, tags, arr, counters = partition.advance(partition.cycle + 256)
        arrives.append(arr)
        tag_log.append(tags)

    all_arrives = np.concatenate(arrives) if arrives else np.zeros(0)
    all_tags = np.concatenate(tag_log) if tag_log else np.zeros(0)
    latencies = [
        int(arrive) - creates[int(tag)]
        for arrive, tag in zip(all_arrives, all_tags)
    ]
    return {
        "mean_latency": (
            sum(latencies) / len(latencies) if latencies else 0.0
        ),
        "delivered_flits_per_cycle": window_flits / window_cycles,
        "offered_load": counters["offered_flits"] / (n * inject_cycles),
        "offered": float(counters["offered_flits"]),
        "delivered": float(counters["delivered_flits"]),
        "drain_cycle": float(partition.cycle),
    }
