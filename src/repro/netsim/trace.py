"""Application trace replay and synthetic NERSC-mini-app-like traces.

The paper replays four DOE mini-app traces (LULESH, MOCFE, MultiGrid,
Nekbone) from the NERSC "Characterization of the DOE mini-apps" dataset
through Booksim, duplicating the 512/1024-node traces 2-4x to fill the
2048-node network. Those trace files are not redistributable, so this
module generates synthetic traces with each application's documented
communication signature:

* **LULESH** — 3-D domain decomposition; bursty halo exchanges with the
  26 spatial neighbors (large faces, smaller edges/corners) per
  iteration. Highly local and bursty: the pattern that gains most from
  the waferscale switch's shallower, faster fabric.
* **MOCFE** — method-of-characteristics neutron transport: angular
  sweep pipelines along ray fronts plus periodic small reductions.
* **MultiGrid** — V-cycle: per-level nearest-neighbor exchanges whose
  message sizes shrink and whose partner strides grow as the grid
  coarsens.
* **Nekbone** — conjugate-gradient spectral-element proxy: dominant
  allreduce (recursive-doubling partners at power-of-two strides) plus
  nearest-neighbor gather/scatter.

Each generator produces a deterministic event list ``(cycle, src, dst,
size_flits)``; `duplicate_trace` replicates it onto a larger machine the
way the paper does.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.netsim.network import NetworkModel
from repro.netsim.packet import Packet
from repro.netsim.stats import RunStats


@dataclass(frozen=True)
class TraceEvent:
    """One message injection: ``src`` sends ``size_flits`` at ``cycle``."""

    cycle: int
    src: int
    dst: int
    size_flits: int

    def __post_init__(self) -> None:
        if self.cycle < 0 or self.size_flits < 1:
            raise ValueError("invalid trace event")
        if self.src == self.dst:
            raise ValueError("trace event must cross the network")


@dataclass(frozen=True)
class SyntheticTraceSpec:
    """Parameters shared by the synthetic mini-app generators."""

    n_nodes: int
    iterations: int = 8
    iteration_gap_cycles: int = 200
    seed: int = 7


def _grid_dims(n_nodes: int) -> tuple:
    """Near-cubic 3-D factorization of the node count."""
    best = (n_nodes, 1, 1)
    best_score = float("inf")
    for x in range(1, n_nodes + 1):
        if n_nodes % x:
            continue
        rest = n_nodes // x
        for y in range(1, rest + 1):
            if rest % y:
                continue
            z = rest // y
            score = max(x, y, z) - min(x, y, z)
            if score < best_score:
                best_score = score
                best = (x, y, z)
    return best


def lulesh_trace(spec: SyntheticTraceSpec) -> List[TraceEvent]:
    """Bursty 3-D 26-neighbor halo exchange per iteration."""
    nx, ny, nz = _grid_dims(spec.n_nodes)
    rng = random.Random(spec.seed)
    events: List[TraceEvent] = []

    def node(x: int, y: int, z: int) -> int:
        return (x % nx) * ny * nz + (y % ny) * nz + (z % nz)

    for it in range(spec.iterations):
        base = it * spec.iteration_gap_cycles
        for x in range(nx):
            for y in range(ny):
                for z in range(nz):
                    src = node(x, y, z)
                    for dx in (-1, 0, 1):
                        for dy in (-1, 0, 1):
                            for dz in (-1, 0, 1):
                                if dx == dy == dz == 0:
                                    continue
                                dst = node(x + dx, y + dy, z + dz)
                                if dst == src:
                                    continue
                                touching = abs(dx) + abs(dy) + abs(dz)
                                # Faces are big, edges smaller, corners tiny.
                                size = {1: 8, 2: 3, 3: 1}[touching]
                                jitter = rng.randrange(4)
                                events.append(
                                    TraceEvent(base + jitter, src, dst, size)
                                )
    return sorted(events, key=lambda e: e.cycle)


def mocfe_trace(spec: SyntheticTraceSpec) -> List[TraceEvent]:
    """Angular sweep pipelines plus periodic small reductions."""
    n = spec.n_nodes
    rng = random.Random(spec.seed)
    events: List[TraceEvent] = []
    for it in range(spec.iterations):
        base = it * spec.iteration_gap_cycles
        # Four sweep directions, staggered as pipeline fronts.
        for direction, step in enumerate((1, -1, 2, -2)):
            for src in range(n):
                dst = (src + step) % n
                if dst == src:
                    continue
                stage_delay = (src if step > 0 else n - src) % 16
                events.append(
                    TraceEvent(
                        base + direction * 8 + stage_delay, src, dst, 4
                    )
                )
        # Small global reduction at iteration end.
        root = rng.randrange(n)
        for src in range(n):
            if src != root:
                events.append(
                    TraceEvent(base + spec.iteration_gap_cycles // 2, src, root, 1)
                )
    return sorted(events, key=lambda e: e.cycle)


def multigrid_trace(spec: SyntheticTraceSpec) -> List[TraceEvent]:
    """V-cycle: neighbor exchange at stride 2^level, shrinking sizes."""
    n = spec.n_nodes
    levels = max(1, (n - 1).bit_length() - 1)
    events: List[TraceEvent] = []
    for it in range(spec.iterations):
        base = it * spec.iteration_gap_cycles
        offset = 0
        # Down the V then back up.
        for level in list(range(levels)) + list(reversed(range(levels))):
            stride = 1 << level
            size = max(1, 8 >> level)
            active = range(0, n, stride)
            for src in active:
                dst = (src + stride) % n
                if dst == src:
                    continue
                events.append(TraceEvent(base + offset, src, dst, size))
            offset += 6
    return sorted(events, key=lambda e: e.cycle)


def nekbone_trace(spec: SyntheticTraceSpec) -> List[TraceEvent]:
    """CG solver: recursive-doubling allreduce + neighbor gather/scatter."""
    n = spec.n_nodes
    if n & (n - 1):
        raise ValueError("nekbone trace needs a power-of-two node count")
    rounds = n.bit_length() - 1
    events: List[TraceEvent] = []
    for it in range(spec.iterations):
        base = it * spec.iteration_gap_cycles
        # Nearest-neighbor gather/scatter (spectral element faces).
        for src in range(n):
            events.append(TraceEvent(base, src, (src + 1) % n, 4))
            events.append(TraceEvent(base, src, (src - 1) % n, 4))
        # Recursive-doubling allreduce.
        for r in range(rounds):
            stride = 1 << r
            for src in range(n):
                events.append(
                    TraceEvent(base + 10 + 4 * r, src, src ^ stride, 1)
                )
    return sorted(events, key=lambda e: e.cycle)


_GENERATORS: Dict[str, Callable[[SyntheticTraceSpec], List[TraceEvent]]] = {
    "lulesh": lulesh_trace,
    "mocfe": mocfe_trace,
    "multigrid": multigrid_trace,
    "nekbone": nekbone_trace,
}

TRACE_NAMES = tuple(sorted(_GENERATORS))


def synthetic_nersc_trace(
    name: str, spec: SyntheticTraceSpec
) -> List[TraceEvent]:
    """Generate a synthetic mini-app trace by name."""
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown trace {name!r}; choose from {TRACE_NAMES}"
        ) from None
    return generator(spec)


def duplicate_trace(
    events: Sequence[TraceEvent], copies: int, nodes_per_copy: int
) -> List[TraceEvent]:
    """Replicate a trace onto a larger machine (the paper's 2x/4x trick).

    Copy ``c`` runs on terminals ``[c * nodes_per_copy, (c+1) * ...)``.
    """
    if copies < 1:
        raise ValueError("copies must be >= 1")
    duplicated: List[TraceEvent] = []
    for copy in range(copies):
        offset = copy * nodes_per_copy
        for event in events:
            duplicated.append(
                TraceEvent(
                    event.cycle,
                    event.src + offset,
                    event.dst + offset,
                    event.size_flits,
                )
            )
    return sorted(duplicated, key=lambda e: e.cycle)


def replay_trace(
    network: NetworkModel,
    events: Sequence[TraceEvent],
    compression: float = 1.0,
    max_cycles: int = 200_000,
    telemetry=None,
    engine: str = "auto",
) -> RunStats:
    """Replay a trace to completion and return its statistics.

    ``compression`` scales injection timestamps: 2.0 injects twice as
    fast (the load knob for the Fig 24 curves). An optional
    :class:`~repro.netsim.telemetry.Telemetry` sink is driven through a
    single ``replay`` window spanning the whole run (trace replay has
    no warmup/measurement split — every packet counts). ``engine``
    picks the simulation kernel explicitly (see :mod:`repro.engines`);
    resolved once here, ahead of the env-var escape hatches.
    """
    if compression <= 0:
        raise ValueError("compression must be positive")
    from repro.engines import resolve_netsim_engine

    engine = resolve_netsim_engine(engine)
    schedule = sorted(
        ((max(0, int(e.cycle / compression)), e) for e in events),
        key=lambda pair: pair[0],
    )
    if telemetry is None:
        from repro.netsim import fast_core

        fast = fast_core.engine_for(network, engine=engine)
        if fast is not None:
            return fast.run_replay(schedule, max_cycles)
    stats = RunStats(measure_start=0, measure_end=0, n_terminals=network.n_terminals)
    if telemetry is not None:
        telemetry.attach(network)
        telemetry.begin_window("replay", network.cycle)
    index = 0
    while index < len(schedule) or network.in_flight_flits() > 0:
        now = network.cycle
        while index < len(schedule) and schedule[index][0] <= now:
            _, event = schedule[index]
            packet = Packet(event.src, event.dst, event.size_flits, now)
            network.terminals[event.src].offer_packet(packet)
            stats.flits_offered += event.size_flits
            stats.packets_created += 1
            index += 1
        network.step()
        if network.cycle >= max_cycles:
            break
    stats.measure_end = network.cycle
    if telemetry is not None:
        telemetry.finish(network.cycle)
    for terminal in network.terminals:
        for packet in terminal.packets_received:
            stats.latencies_cycles.append(packet.latency_cycles)
            stats.flits_delivered += packet.size_flits
    return stats
