"""Round-robin arbitration primitives used by VC and switch allocation."""

from __future__ import annotations

from typing import Iterable, List, Optional, TypeVar

T = TypeVar("T")


class RoundRobinArbiter:
    """A rotating-priority arbiter over a fixed-size index space."""

    __slots__ = ("size", "_pointer")

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("arbiter size must be >= 1")
        self.size = size
        self._pointer = 0

    def pick(self, requests: Iterable[int]) -> Optional[int]:
        """Grant the requesting index closest after the priority pointer.

        The winner becomes the lowest-priority index for the next
        arbitration (classic round-robin update).
        """
        # Scan the (usually short) request list rather than the whole
        # index space: the winner minimises the cyclic distance from
        # the pointer, which is exactly "first match at or after it".
        pointer = self._pointer
        size = self.size
        best = -1
        best_distance = size
        for request in requests:
            distance = request - pointer
            if distance < 0:
                distance += size
            if distance < best_distance:
                best_distance = distance
                best = request
        if best < 0:
            return None
        self._pointer = best + 1 if best + 1 < size else 0
        return best


def rotate_from(items: List[T], start: int) -> List[T]:
    """The list rotated to begin at ``start`` (helper for VC scans)."""
    if not items:
        return []
    start %= len(items)
    return items[start:] + items[:start]
