"""Round-robin arbitration primitives used by VC and switch allocation."""

from __future__ import annotations

from typing import Iterable, List, Optional, TypeVar

T = TypeVar("T")


class RoundRobinArbiter:
    """A rotating-priority arbiter over a fixed-size index space."""

    __slots__ = ("size", "_pointer")

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("arbiter size must be >= 1")
        self.size = size
        self._pointer = 0

    def pick(self, requests: Iterable[int]) -> Optional[int]:
        """Grant the requesting index closest after the priority pointer.

        The winner becomes the lowest-priority index for the next
        arbitration (classic round-robin update).
        """
        request_set = set(requests)
        if not request_set:
            return None
        for offset in range(self.size):
            candidate = (self._pointer + offset) % self.size
            if candidate in request_set:
                self._pointer = (candidate + 1) % self.size
                return candidate
        return None


def rotate_from(items: List[T], start: int) -> List[T]:
    """The list rotated to begin at ``start`` (helper for VC scans)."""
    if not items:
        return []
    start %= len(items)
    return items[start:] + items[:start]
