"""Fixed-latency channels carrying flits forward and credits back."""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.netsim.packet import Flit


def schedule_event(events: Dict[int, list], arrival: int, key: int) -> None:
    """Add ``key`` to the calendar bucket for cycle ``arrival``."""
    bucket = events.get(arrival)
    if bucket is None:
        events[arrival] = [key]
    else:
        bucket.append(key)


class Link:
    """A unidirectional flit channel with a fixed cycle latency.

    The paired credit channel (for the upstream router's flow control)
    has the same latency, so the round-trip time seen by the buffer
    sizing experiments is ``2 x latency + pipeline``.

    When registered with a :class:`~repro.netsim.network.NetworkModel`,
    the link schedules itself on the network's event calendar (a dict
    of ``cycle -> [link keys]`` buckets) whenever it goes from empty to
    occupied, so idle links cost nothing per cycle (the active-set
    scheduler). Per-link arrival times are monotonic — ``latency`` is
    fixed and ``extra_delay`` is constant per sender — so the queue
    head is always the earliest arrival.
    """

    __slots__ = ("latency", "_in_flight", "_events", "_event_key")

    def __init__(self, latency: int):
        if latency < 1:
            raise ValueError("link latency must be >= 1 cycle")
        self.latency = latency
        self._in_flight: Deque[Tuple[int, Flit]] = deque()
        self._events: Optional[Dict[int, list]] = None
        self._event_key = -1

    def watch(self, events: Dict[int, list], key: int) -> None:
        """Register with an event calendar under ``key`` (wiring)."""
        self._events = events
        self._event_key = key

    def send(self, flit: Flit, now: int, extra_delay: int = 0) -> None:
        """Inject a flit; it arrives at ``now + latency + extra_delay``."""
        arrival = now + self.latency + extra_delay
        queue = self._in_flight
        if not queue and self._events is not None:
            schedule_event(self._events, arrival, self._event_key)
        queue.append((arrival, flit))

    def deliver(self, now: int) -> List[Flit]:
        """Pop every flit whose arrival cycle has come."""
        arrived: List[Flit] = []
        queue = self._in_flight
        while queue and queue[0][0] <= now:
            arrived.append(queue.popleft()[1])
        return arrived

    @property
    def occupancy(self) -> int:
        return len(self._in_flight)


class CreditChannel:
    """Returns buffer credits upstream with a fixed latency.

    Registers on an event calendar exactly like :class:`Link` so
    credits in flight wake only their consumer, not every channel
    every cycle.
    """

    __slots__ = ("latency", "_in_flight", "_events", "_event_key")

    def __init__(self, latency: int):
        if latency < 1:
            raise ValueError("credit latency must be >= 1 cycle")
        self.latency = latency
        self._in_flight: Deque[Tuple[int, int]] = deque()
        self._events: Optional[Dict[int, list]] = None
        self._event_key = -1

    def watch(self, events: Dict[int, list], key: int) -> None:
        """Register with an event calendar under ``key`` (wiring)."""
        self._events = events
        self._event_key = key

    def send(self, count: int, now: int) -> None:
        arrival = now + self.latency
        queue = self._in_flight
        if not queue and self._events is not None:
            schedule_event(self._events, arrival, self._event_key)
        queue.append((arrival, count))

    def deliver(self, now: int) -> int:
        total = 0
        queue = self._in_flight
        while queue and queue[0][0] <= now:
            total += queue.popleft()[1]
        return total
