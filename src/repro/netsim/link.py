"""Fixed-latency channels carrying flits forward and credits back."""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

from repro.netsim.packet import Flit


class Link:
    """A unidirectional flit channel with a fixed cycle latency.

    The paired credit channel (for the upstream router's flow control)
    has the same latency, so the round-trip time seen by the buffer
    sizing experiments is ``2 x latency + pipeline``.
    """

    __slots__ = ("latency", "_in_flight")

    def __init__(self, latency: int):
        if latency < 1:
            raise ValueError("link latency must be >= 1 cycle")
        self.latency = latency
        self._in_flight: Deque[Tuple[int, Flit]] = deque()

    def send(self, flit: Flit, now: int, extra_delay: int = 0) -> None:
        """Inject a flit; it arrives at ``now + latency + extra_delay``."""
        self._in_flight.append((now + self.latency + extra_delay, flit))

    def deliver(self, now: int) -> List[Flit]:
        """Pop every flit whose arrival cycle has come."""
        arrived: List[Flit] = []
        while self._in_flight and self._in_flight[0][0] <= now:
            arrived.append(self._in_flight.popleft()[1])
        return arrived

    @property
    def occupancy(self) -> int:
        return len(self._in_flight)


class CreditChannel:
    """Returns buffer credits upstream with a fixed latency."""

    __slots__ = ("latency", "_in_flight")

    def __init__(self, latency: int):
        if latency < 1:
            raise ValueError("credit latency must be >= 1 cycle")
        self.latency = latency
        self._in_flight: Deque[Tuple[int, int]] = deque()

    def send(self, count: int, now: int) -> None:
        self._in_flight.append((now + self.latency, count))

    def deliver(self, now: int) -> int:
        total = 0
        while self._in_flight and self._in_flight[0][0] <= now:
            total += self._in_flight.popleft()[1]
        return total
