"""Network construction: waferscale Clos and its switch-network twin.

Both the waferscale switch and the baseline "equivalent switch network"
are 2-level folded Clos fabrics of sub-switches; what differs is the
physics (Section VI):

* **Waferscale** — SSC-to-SSC links are on-wafer (1 cycle = 20 ns),
  SSC pipeline delay 11 cycles, and optionally the proprietary
  destination-tag routing (RC of 2 cycles at ingress, 1 in transit).
* **Baseline** — switch boxes connected by in-rack PCB / optical links
  (8 cycles), box pipeline delay 15 cycles, conventional Layer-3 route
  computation (4 cycles) at every hop.

Host-to-switch I/O delay is 8 cycles for both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.netsim.config import RouterConfig
from repro.netsim.link import CreditChannel, Link
from repro.netsim.packet import Flit
from repro.netsim.router import Router
from repro.netsim.terminal import Terminal


@dataclass
class NetworkModel:
    """A wired network of routers and terminals plus its cycle driver.

    ``step`` is driven by an active-set scheduler: links and credit
    channels sit on event calendars (dicts of ``cycle -> [indices]``
    buckets) keyed by their next arrival cycle, so idle channels are
    never touched, idle terminals are skipped, and a router's
    allocation stages only run when it has pending work. The
    cycle-by-cycle behaviour is identical to stepping every component
    (``tests/netsim/test_golden_parity.py`` holds it to that).
    """

    name: str
    routers: List[Router]
    terminals: List[Terminal]
    links: List[tuple] = field(default_factory=list)  # (link, sink_kind, sink, port)
    cycle: int = 0
    #: arrival cycle -> [index into ``links``] — flits in flight.
    _link_events: Dict[int, list] = field(default_factory=dict, repr=False)
    #: arrival cycle -> [index into ``_credit_sinks``].
    _credit_events: Dict[int, list] = field(default_factory=dict, repr=False)
    #: (channel, consuming router, out port) per registered channel.
    _credit_sinks: List[tuple] = field(default_factory=list, repr=False)
    #: Bound ``receive_flit`` per link (None for terminal sinks).
    _link_handlers: List[Optional[Callable]] = field(
        default_factory=list, repr=False
    )
    #: Optional :class:`~repro.netsim.telemetry.Telemetry` sink; set by
    #: ``Telemetry.attach``. ``None`` costs one check per ``step``.
    telemetry: Optional[object] = field(default=None, repr=False)
    #: Optional ``(kind, params)`` tag describing the route function.
    #: Builders set it so :mod:`repro.netsim.fast_core` can compile the
    #: routing decision into array ops; ``None`` (custom route
    #: functions) keeps runs on the scalar object engine.
    route_spec: Optional[tuple] = field(default=None, repr=False)

    @property
    def n_terminals(self) -> int:
        return len(self.terminals)

    def add_link(self, link: Link, sink_kind: str, sink, port: int) -> None:
        """Register a flit link and its sink with the event scheduler."""
        link.watch(self._link_events, len(self.links))
        self.links.append((link, sink_kind, sink, port))
        # Router delivery is bound once here; terminal delivery stays a
        # live attribute lookup (tests spy on ``Terminal.receive``).
        self._link_handlers.append(
            sink.receive_flit if sink_kind == "router" else None
        )

    def add_credit_channel(
        self, channel: CreditChannel, router: Router, port: int
    ) -> None:
        """Register a router-bound credit channel with the scheduler."""
        channel.watch(self._credit_events, len(self._credit_sinks))
        self._credit_sinks.append((channel, router, port))

    def step(self) -> None:
        """Advance the whole network by one cycle."""
        now = self.cycle
        # 1. Deliver flits whose link latency has elapsed. Every send
        # lands strictly in the future and step visits every cycle, so
        # popping exactly the ``now`` bucket never misses an arrival.
        bucket = self._link_events.pop(now, None)
        if bucket is not None:
            links = self.links
            handlers = self._link_handlers
            link_events = self._link_events
            for index in bucket:
                link, _, sink, port = links[index]
                pending = link._in_flight
                handler = handlers[index]
                if handler is not None:
                    while pending and pending[0][0] <= now:
                        handler(port, pending.popleft()[1], now)
                else:
                    while pending and pending[0][0] <= now:
                        sink.receive(pending.popleft()[1], now)
                if pending:
                    arrival = pending[0][0]
                    tail = link_events.get(arrival)
                    if tail is None:
                        link_events[arrival] = [index]
                    else:
                        tail.append(index)
        # 2. Credits return; terminals inject.
        bucket = self._credit_events.pop(now, None)
        if bucket is not None:
            sinks = self._credit_sinks
            credit_events = self._credit_events
            for index in bucket:
                channel, router, port = sinks[index]
                pending = channel._in_flight
                total = 0
                while pending and pending[0][0] <= now:
                    total += pending.popleft()[1]
                router.out_credits[port] += total
                if pending:
                    arrival = pending[0][0]
                    tail = credit_events.get(arrival)
                    if tail is None:
                        credit_events[arrival] = [index]
                    else:
                        tail.append(index)
        for terminal in self.terminals:
            # Idle terminals (empty source queue) have nothing to do;
            # their credit returns are absorbed lazily on next use.
            if terminal.source_queue:
                terminal.inject(now)
        # 3. Router pipelines (only where work is pending). The one
        # branch on ``self.telemetry`` here is the entire disabled-mode
        # cost of instrumentation: the plain allocate methods carry no
        # telemetry checks at all (their ``*_telemetry`` twins do).
        telemetry = self.telemetry
        if telemetry is None:
            for router in self.routers:
                if router.rc_pending:
                    router.vc_allocate(now)
                if router.active_out_ports:
                    router.switch_allocate(now)
        else:
            for router in self.routers:
                if router.rc_pending:
                    router.vc_allocate_telemetry(now)
                if router.active_out_ports:
                    router.switch_allocate_telemetry(now)
            if now % telemetry.sample_interval == 0:
                telemetry.sample(self, now)
        self.cycle += 1

    def in_flight_flits(self) -> int:
        """Flits buffered in routers or on the wire (drain detection)."""
        buffered = sum(router._buffered_total for router in self.routers)
        on_wire = sum(len(link._in_flight) for link, _, _, _ in self.links)
        backlog = sum(len(t.source_queue) for t in self.terminals)
        return buffered + on_wire + backlog


# ----------------------------------------------------------------------
# Folded-Clos wiring
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ClosShape:
    """Integer geometry of a 2-level folded Clos of sub-switches."""

    n_terminals: int
    ssc_radix: int

    def __post_init__(self) -> None:
        k = self.ssc_radix
        if k % 2 != 0:
            raise ValueError("SSC radix must be even")
        if self.n_terminals % k != 0 or self.n_terminals < k:
            raise ValueError(
                f"terminal count {self.n_terminals} must be a positive "
                f"multiple of the SSC radix {k}"
            )
        if (k // 2) % self.n_spines != 0:
            raise ValueError(
                "leaf uplinks must divide evenly across spines "
                f"(k/2={k // 2}, spines={self.n_spines})"
            )

    @property
    def down_per_leaf(self) -> int:
        return self.ssc_radix // 2

    @property
    def n_leaves(self) -> int:
        return 2 * self.n_terminals // self.ssc_radix

    @property
    def n_spines(self) -> int:
        return self.n_terminals // self.ssc_radix

    @property
    def channels_per_pair(self) -> int:
        return self.down_per_leaf // self.n_spines


def _clos_route(
    shape: ClosShape, spine_selection: str = "hash"
) -> Callable[[Router, int, Flit], int]:
    """Route function for the folded Clos.

    Leaves: ports [0, down) face terminals; port ``down + s*cpp + c`` is
    uplink channel ``c`` to spine ``s``. Spines: port ``l*cpp + c`` is
    channel ``c`` to leaf ``l``.

    ``spine_selection`` picks the uplink at the ingress leaf:
      * ``"hash"`` — oblivious, hashes the packet id across the Clos's
        path diversity (the paper's baseline behaviour).
      * ``"adaptive"`` — credit-based: take the uplink port with the
        most downstream credits (UGAL-like local adaptivity).
    """
    if spine_selection not in ("hash", "adaptive"):
        raise ValueError(f"unknown spine selection {spine_selection!r}")
    down = shape.down_per_leaf
    cpp = shape.channels_per_pair
    spines = shape.n_spines
    leaves = shape.n_leaves
    adaptive = spine_selection == "adaptive"
    # The (leaf, local) split of every destination is fixed by the
    # shape; precompute it once instead of divmod-ing per RC.
    dst_leaf_of = [dst // down for dst in range(shape.n_terminals)]
    dst_local_of = [dst % down for dst in range(shape.n_terminals)]
    uplinks = range(down, down + spines * cpp)

    def route(router: Router, in_port: int, flit: Flit) -> int:
        dst = flit.dst
        if router.router_id < leaves:
            if router.router_id == dst_leaf_of[dst]:
                return dst_local_of[dst]
            if adaptive:
                return max(uplinks, key=lambda p: router.out_credits[p])
            packet_id = flit.packet.packet_id
            return down + (packet_id % spines) * cpp + (packet_id // spines) % cpp
        # Spine router: ids are offset by the leaf count.
        return dst_leaf_of[dst] * cpp + flit.packet.packet_id % cpp

    return route


def _wire(
    network: NetworkModel,
    src_router: Router,
    src_port: int,
    dst_router: Router,
    dst_port: int,
    latency: int,
) -> None:
    """Connect two router ports with a flit link + credit channel."""
    link = Link(latency)
    credits = CreditChannel(latency)
    src_router.attach_output(
        src_port,
        link,
        credits,
        downstream_capacity=dst_router.config.buffer_flits_per_port,
        is_terminal=False,
    )
    dst_router.attach_input(dst_port, credits, from_terminal=False)
    network.add_link(link, "router", dst_router, dst_port)
    network.add_credit_channel(credits, src_router, src_port)


def _wire_terminal(
    network: NetworkModel,
    terminal: Terminal,
    router: Router,
    port: int,
    latency: int,
) -> None:
    """Bidirectional terminal attachment (inject + eject paths)."""
    inject = Link(latency)
    inject_credits = CreditChannel(latency)
    terminal.attach(
        inject, inject_credits, initial_credits=router.config.buffer_flits_per_port
    )
    router.attach_input(port, inject_credits, from_terminal=True)
    network.add_link(inject, "router", router, port)

    eject = Link(latency)
    router.attach_output(
        port, eject, None, downstream_capacity=0, is_terminal=True
    )
    network.add_link(eject, "terminal", terminal, port)


def clos_network(
    name: str,
    n_terminals: int,
    ssc_radix: int,
    config: RouterConfig,
    inter_switch_latency: int,
    io_latency: int,
    ingress_routing_delay: Optional[int] = None,
    spine_selection: str = "hash",
    pair_latency_fn: Optional[Callable[[int, int], int]] = None,
) -> NetworkModel:
    """Build a 2-level folded Clos network of sub-switch routers.

    ``pair_latency_fn(leaf, spine)`` overrides the uniform
    ``inter_switch_latency`` per leaf-spine pair — used to model the
    non-uniform link latencies a mesh-mapped Clos actually has
    (Section IV's "input buffers handle non-uniform latency" claim).
    """
    shape = ClosShape(n_terminals, ssc_radix)
    route_fn = _clos_route(shape, spine_selection)
    route_spec = (
        "clos",
        {
            "n_terminals": n_terminals,
            "ssc_radix": ssc_radix,
            "spine_selection": spine_selection,
        },
    )
    routers = []
    for leaf in range(shape.n_leaves):
        routers.append(
            Router(
                leaf,
                ssc_radix,
                config,
                route_fn,
                ingress_routing_delay=ingress_routing_delay,
            )
        )
    for spine in range(shape.n_spines):
        routers.append(
            Router(
                shape.n_leaves + spine,
                ssc_radix,
                config,
                route_fn,
                ingress_routing_delay=ingress_routing_delay,
            )
        )
    terminals = [Terminal(t, config.num_vcs) for t in range(n_terminals)]
    network = NetworkModel(
        name=name,
        routers=routers,
        terminals=terminals,
        route_spec=route_spec,
    )

    down = shape.down_per_leaf
    cpp = shape.channels_per_pair
    for leaf in range(shape.n_leaves):
        leaf_router = routers[leaf]
        for local in range(down):
            terminal = terminals[leaf * down + local]
            _wire_terminal(network, terminal, leaf_router, local, io_latency)
        for spine in range(shape.n_spines):
            spine_router = routers[shape.n_leaves + spine]
            latency = (
                pair_latency_fn(leaf, spine)
                if pair_latency_fn is not None
                else inter_switch_latency
            )
            for channel in range(cpp):
                leaf_port = down + spine * cpp + channel
                spine_port = leaf * cpp + channel
                _wire(
                    network,
                    leaf_router,
                    leaf_port,
                    spine_router,
                    spine_port,
                    latency,
                )
                _wire(
                    network,
                    spine_router,
                    spine_port,
                    leaf_router,
                    leaf_port,
                    latency,
                )
    return network


def mapped_pair_latency_fn(mapping, cycles_per_hop: float = 1.0):
    """Per-pair link latencies from a physical mapping.

    Given a :class:`~repro.mapping.exchange.MappingResult` of the same
    folded Clos, returns ``pair_latency_fn(leaf, spine)`` = the
    Manhattan hop distance between the two chiplets' sites scaled by
    ``cycles_per_hop`` (min 1 cycle). Lets the simulator model the
    non-uniform latencies a mesh-mapped Clos actually has.
    """
    placement = mapping.placement
    topology = placement.topology
    leaves = topology.leaves()
    spines = topology.spines()

    def pair_latency(leaf: int, spine: int) -> int:
        site_a = placement.site_of[leaves[leaf].index]
        site_b = placement.site_of[spines[spine].index]
        hops = placement.grid.manhattan(site_a, site_b)
        return max(1, round(hops * cycles_per_hop))

    return pair_latency


# ----------------------------------------------------------------------
# The paper's two comparison configurations (Section VI)
# ----------------------------------------------------------------------

def waferscale_clos_network(
    n_terminals: int,
    ssc_radix: int,
    num_vcs: int = 16,
    buffer_flits_per_port: int = 32,
    ssc_pipeline_delay: int = 11,
    routing_delay: int = 1,
    ingress_routing_delay: Optional[int] = 2,
    link_latency: int = 1,
    io_latency: int = 8,
) -> NetworkModel:
    """The waferscale switch: on-wafer links, proprietary routing."""
    config = RouterConfig(
        num_vcs=num_vcs,
        buffer_flits_per_port=buffer_flits_per_port,
        routing_delay=routing_delay,
        pipeline_delay=ssc_pipeline_delay,
    )
    return clos_network(
        "waferscale",
        n_terminals,
        ssc_radix,
        config,
        inter_switch_latency=link_latency,
        io_latency=io_latency,
        ingress_routing_delay=ingress_routing_delay,
    )


def baseline_switch_network(
    n_terminals: int,
    ssc_radix: int,
    num_vcs: int = 16,
    buffer_flits_per_port: int = 32,
    switch_pipeline_delay: int = 15,
    routing_delay: int = 4,
    link_latency: int = 8,
    io_latency: int = 8,
) -> NetworkModel:
    """The equivalent discrete switch network (TH-5 boxes + optics)."""
    config = RouterConfig(
        num_vcs=num_vcs,
        buffer_flits_per_port=buffer_flits_per_port,
        routing_delay=routing_delay,
        pipeline_delay=switch_pipeline_delay,
    )
    return clos_network(
        "switch-network",
        n_terminals,
        ssc_radix,
        config,
        inter_switch_latency=link_latency,
        io_latency=io_latency,
        ingress_routing_delay=None,
    )


def single_router_network(
    n_terminals: int,
    num_vcs: int = 4,
    buffer_flits_per_port: int = 8,
    routing_delay: int = 1,
    pipeline_delay: int = 1,
    io_latency: int = 1,
) -> NetworkModel:
    """A lone router with all ports on terminals (unit testing)."""
    config = RouterConfig(
        num_vcs=num_vcs,
        buffer_flits_per_port=buffer_flits_per_port,
        routing_delay=routing_delay,
        pipeline_delay=pipeline_delay,
    )

    def route(router: Router, in_port: int, flit: Flit) -> int:
        return flit.dst

    router = Router(0, n_terminals, config, route)
    terminals = [Terminal(t, num_vcs) for t in range(n_terminals)]
    network = NetworkModel(
        name="single-router",
        routers=[router],
        terminals=terminals,
        route_spec=("single", {}),
    )
    for t, terminal in enumerate(terminals):
        _wire_terminal(network, terminal, router, t, io_latency)
    return network
