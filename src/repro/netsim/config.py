"""Simulator configuration objects."""

from __future__ import annotations

from dataclasses import dataclass

#: One simulation cycle in nanoseconds (the paper's convention).
CYCLE_TIME_NS = 20.0


@dataclass(frozen=True)
class RouterConfig:
    """Per-router microarchitecture parameters (Fig 20's four stages).

    Attributes:
        num_vcs: Virtual channels per input port.
        buffer_flits_per_port: Shared input buffer capacity per port,
            in flits (shared across the port's VCs — the paper's shared
            buffer policy).
        routing_delay: Route-computation latency in cycles for a head
            flit (the paper's proprietary-routing experiment sets 4 for
            conventional Layer-3 lookup, 2 at ingress SSCs and 1 at
            non-ingress SSCs with destination-tag routing).
        pipeline_delay: Additional cycles every flit spends crossing the
            router after winning switch allocation (VA+SA+ST depth; the
            paper's "SSC delay" / "switch box delay" knob).
    """

    num_vcs: int = 16
    buffer_flits_per_port: int = 32
    routing_delay: int = 1
    pipeline_delay: int = 1

    def __post_init__(self) -> None:
        if self.num_vcs < 1:
            raise ValueError("num_vcs must be >= 1")
        if self.buffer_flits_per_port < 1:
            raise ValueError("buffer_flits_per_port must be >= 1")
        if self.routing_delay < 0 or self.pipeline_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.buffer_flits_per_port < self.num_vcs:
            # Each VC needs at least one flit slot to make progress.
            raise ValueError(
                "shared buffer must hold at least one flit per VC "
                f"({self.buffer_flits_per_port} < {self.num_vcs})"
            )


@dataclass(frozen=True)
class SimConfig:
    """Run-level simulation parameters (Booksim's three-phase method).

    A run is three explicit windows over one network instance:

    * **warmup** (``warmup_cycles``) — traffic is offered but nothing
      is measured; fills pipelines and buffers to steady state.
    * **measurement** (``measure_cycles``) — traffic keeps flowing and
      the run's statistics cover exactly this window: offered/accepted
      load count flits injected/delivered *during* it, and latency
      covers packets *created* during it (wherever they finish).
    * **drain** (up to ``drain_cycles``) — injection stops; the network
      keeps stepping so measurement-window packets still in flight can
      arrive and be counted. Ends early once the network is empty. A
      too-small drain censors the slowest packets —
      :attr:`~repro.netsim.stats.RunStats.packets_outstanding` reports
      how many were cut off.

    Attributes:
        warmup_cycles: Unmeasured lead-in cycles.
        measure_cycles: Length of the measurement window.
        drain_cycles: Upper bound on post-measurement drain cycles
            (0 skips draining, as saturation estimates do).
        packet_size_flits: Flits per generated packet.
        seed: Seed for the Bernoulli injection process (runs are
            deterministic for a fixed seed, network, pattern, load).

    >>> SimConfig(warmup_cycles=100, measure_cycles=400).measure_cycles
    400
    >>> SimConfig(measure_cycles=0)
    Traceback (most recent call last):
        ...
    ValueError: measure_cycles must be >= 1
    """

    warmup_cycles: int = 1000
    measure_cycles: int = 2000
    drain_cycles: int = 3000
    packet_size_flits: int = 4
    seed: int = 1

    def __post_init__(self) -> None:
        if self.warmup_cycles < 0:
            raise ValueError("warmup_cycles must be >= 0")
        if self.measure_cycles < 1:
            raise ValueError("measure_cycles must be >= 1")
        if self.drain_cycles < 0:
            raise ValueError("drain_cycles must be >= 0")
        if self.packet_size_flits < 1:
            raise ValueError("packet_size_flits must be >= 1")
