"""Simulator configuration objects."""

from __future__ import annotations

from dataclasses import dataclass

#: One simulation cycle in nanoseconds (the paper's convention).
CYCLE_TIME_NS = 20.0


@dataclass(frozen=True)
class RouterConfig:
    """Per-router microarchitecture parameters (Fig 20's four stages).

    Attributes:
        num_vcs: Virtual channels per input port.
        buffer_flits_per_port: Shared input buffer capacity per port,
            in flits (shared across the port's VCs — the paper's shared
            buffer policy).
        routing_delay: Route-computation latency in cycles for a head
            flit (the paper's proprietary-routing experiment sets 4 for
            conventional Layer-3 lookup, 2 at ingress SSCs and 1 at
            non-ingress SSCs with destination-tag routing).
        pipeline_delay: Additional cycles every flit spends crossing the
            router after winning switch allocation (VA+SA+ST depth; the
            paper's "SSC delay" / "switch box delay" knob).
    """

    num_vcs: int = 16
    buffer_flits_per_port: int = 32
    routing_delay: int = 1
    pipeline_delay: int = 1

    def __post_init__(self) -> None:
        if self.num_vcs < 1:
            raise ValueError("num_vcs must be >= 1")
        if self.buffer_flits_per_port < 1:
            raise ValueError("buffer_flits_per_port must be >= 1")
        if self.routing_delay < 0 or self.pipeline_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.buffer_flits_per_port < self.num_vcs:
            # Each VC needs at least one flit slot to make progress.
            raise ValueError(
                "shared buffer must hold at least one flit per VC "
                f"({self.buffer_flits_per_port} < {self.num_vcs})"
            )
