"""Synthetic traffic patterns (the paper's Fig 23 set).

Each pattern maps a source terminal to a destination distribution.
Injection is a Bernoulli process per terminal at the offered load
(flits/cycle/terminal), as in Booksim. Build patterns by name:

>>> import random
>>> make_pattern("tornado", 8).destination(1, random.Random(0))
5
>>> make_pattern("transpose", 16).destination(0b0111, random.Random(0))
13
>>> sorted(TRAFFIC_PATTERNS)[:3]
['asymmetric', 'bit-complement', 'bit-reverse']

Deterministic patterns ignore the RNG; ``uniform`` / ``hotspot`` /
``asymmetric`` draw from it, so a seeded ``random.Random`` makes runs
reproducible. Self-traffic never enters the network — it is redirected
to the next terminal so offered load is preserved:

>>> make_pattern("neighbor", 4).destination(3, random.Random(0))
0
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional


def _require_power_of_two(n: int, pattern: str) -> None:
    if n & (n - 1):
        raise ValueError(f"{pattern} traffic needs a power-of-two terminal count")


@dataclass
class TrafficPattern:
    """A named source->destination distribution over terminals."""

    name: str
    n_terminals: int
    destination_fn: Callable[[int, random.Random], int]

    def destination(self, src: int, rng: random.Random) -> int:
        dst = self.destination_fn(src, rng)
        if dst == src:
            # Self-traffic never enters the network; redirect to the
            # next terminal so offered load is preserved.
            dst = (src + 1) % self.n_terminals
        return dst


def uniform(n: int) -> TrafficPattern:
    """Uniform random: every other terminal equally likely."""

    def dest(src: int, rng: random.Random) -> int:
        dst = rng.randrange(n - 1)
        return dst if dst < src else dst + 1

    return TrafficPattern("uniform", n, dest)


def transpose(n: int) -> TrafficPattern:
    """Matrix transpose: bit-halves of the terminal id swap."""
    _require_power_of_two(n, "transpose")
    bits = n.bit_length() - 1
    half = bits // 2

    def dest(src: int, rng: random.Random) -> int:
        low = src & ((1 << half) - 1)
        high = src >> half
        return (low << (bits - half)) | high

    return TrafficPattern("transpose", n, dest)


def bit_complement(n: int) -> TrafficPattern:
    """Destination is the bitwise complement of the source."""
    _require_power_of_two(n, "bit-complement")

    def dest(src: int, rng: random.Random) -> int:
        return src ^ (n - 1)

    return TrafficPattern("bit-complement", n, dest)


def shuffle(n: int) -> TrafficPattern:
    """Perfect shuffle: rotate the address bits left by one."""
    _require_power_of_two(n, "shuffle")
    bits = n.bit_length() - 1

    def dest(src: int, rng: random.Random) -> int:
        return ((src << 1) | (src >> (bits - 1))) & (n - 1)

    return TrafficPattern("shuffle", n, dest)


def neighbor(n: int) -> TrafficPattern:
    """Nearest neighbor: terminal i sends to i+1 (mod n)."""

    def dest(src: int, rng: random.Random) -> int:
        return (src + 1) % n

    return TrafficPattern("neighbor", n, dest)


def bit_reverse(n: int) -> TrafficPattern:
    """Destination is the bit-reversal of the source address."""
    _require_power_of_two(n, "bit-reverse")
    bits = n.bit_length() - 1

    def dest(src: int, rng: random.Random) -> int:
        result = 0
        for bit in range(bits):
            if src & (1 << bit):
                result |= 1 << (bits - 1 - bit)
        return result

    return TrafficPattern("bit-reverse", n, dest)


def tornado(n: int) -> TrafficPattern:
    """Tornado: each terminal sends halfway around the machine."""

    def dest(src: int, rng: random.Random) -> int:
        return (src + n // 2) % n

    return TrafficPattern("tornado", n, dest)


def hotspot(n: int, hotspot_fraction: float = 0.2, n_hotspots: int = 4) -> TrafficPattern:
    """Uniform traffic with a fraction directed at a few hot terminals."""
    if not 0.0 <= hotspot_fraction <= 1.0:
        raise ValueError("hotspot_fraction must be in [0, 1]")
    hotspots = [((i + 1) * n) // (n_hotspots + 1) for i in range(n_hotspots)]

    def dest(src: int, rng: random.Random) -> int:
        if rng.random() < hotspot_fraction:
            return hotspots[rng.randrange(len(hotspots))]
        dst = rng.randrange(n - 1)
        return dst if dst < src else dst + 1

    return TrafficPattern("hotspot", n, dest)


def asymmetric(n: int, skew: float = 0.75) -> TrafficPattern:
    """Asymmetric: most traffic targets the first half of the machine.

    Models the paper's "asymmetric" pattern whose saturation is limited
    by the oversubscribed destination half rather than the fabric.
    """
    if not 0.0 < skew < 1.0:
        raise ValueError("skew must be in (0, 1)")

    def dest(src: int, rng: random.Random) -> int:
        if rng.random() < skew:
            return rng.randrange(n // 2)
        return n // 2 + rng.randrange(n - n // 2)

    return TrafficPattern("asymmetric", n, dest)


_FACTORIES: Dict[str, Callable[[int], TrafficPattern]] = {
    "uniform": uniform,
    "transpose": transpose,
    "bit-complement": bit_complement,
    "bit-reverse": bit_reverse,
    "shuffle": shuffle,
    "neighbor": neighbor,
    "tornado": tornado,
    "hotspot": hotspot,
    "asymmetric": asymmetric,
}

TRAFFIC_PATTERNS = tuple(sorted(_FACTORIES))


def make_pattern(name: str, n_terminals: int) -> TrafficPattern:
    """Build a pattern by name for the given terminal count.

    >>> make_pattern("uniform", 64).name
    'uniform'
    >>> make_pattern("zipf", 64)
    Traceback (most recent call last):
        ...
    ValueError: unknown traffic pattern 'zipf'; choose from \
('asymmetric', 'bit-complement', 'bit-reverse', 'hotspot', 'neighbor', \
'shuffle', 'tornado', 'transpose', 'uniform')
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown traffic pattern {name!r}; choose from {TRAFFIC_PATTERNS}"
        ) from None
    return factory(n_terminals)


class BernoulliInjector:
    """Per-terminal Bernoulli packet generation at an offered load."""

    def __init__(
        self,
        pattern: TrafficPattern,
        load_flits_per_cycle: float,
        packet_size_flits: int,
        seed: int = 1,
    ):
        if not 0.0 <= load_flits_per_cycle <= 1.0:
            raise ValueError("offered load must be in [0, 1] flits/cycle")
        if packet_size_flits < 1:
            raise ValueError("packet size must be >= 1 flit")
        self.pattern = pattern
        self.packet_probability = load_flits_per_cycle / packet_size_flits
        self.packet_size_flits = packet_size_flits
        self.rng = random.Random(seed)

    def generate(self, now: int, terminal_id: int) -> Optional[tuple]:
        """(dst, size) if this terminal creates a packet this cycle."""
        if self.rng.random() >= self.packet_probability:
            return None
        dst = self.pattern.destination(terminal_id, self.rng)
        return dst, self.packet_size_flits
